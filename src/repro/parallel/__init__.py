"""Process-parallel execution over zero-copy shared-memory snapshots.

The GIL serializes the Python-level beam-walk loops that dominate
ACORN-γ traversal, so thread fan-out only overlaps the NumPy kernels.
This package provides the escape hatch: an epoch's read-only arrays are
frozen into a named shared-memory :class:`SnapshotArena`, a persistent
spawn-based :class:`ProcessPool` maps them zero-copy, and workers run
the library's *own* search methods over reconstructed index objects —
so ``executor="process"`` results are byte-identical to the thread and
sync paths.  See ``docs/parallelism.md``.
"""

from repro.parallel.arena import (
    COPY_FIXUPS,
    ArenaManager,
    ArenaRecord,
    ArraySpec,
    SnapshotArena,
    attach_arena,
    canonical_array,
    parallel_available,
    reset_fixup_counters,
)
from repro.parallel.pool import ProcessPool, RemoteError, WorkerCrash
from repro.parallel.snapshot import (
    IndexSpec,
    ShardedSpec,
    UnsupportedSearcher,
    build_sharded_snapshot,
    build_snapshot,
    materialize,
    materialize_shard,
    searcher_kind,
    sharded_snapshot_refs,
    sharded_snapshot_token,
    snapshot_refs,
    snapshot_token,
)

EXECUTORS = ("thread", "process", "sync")


def resolve_executor(executor: str) -> str:
    """Validate an ``executor=`` argument."""
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    return executor


__all__ = [
    "ArenaManager",
    "ArenaRecord",
    "ArraySpec",
    "COPY_FIXUPS",
    "EXECUTORS",
    "IndexSpec",
    "ProcessPool",
    "RemoteError",
    "ShardedSpec",
    "SnapshotArena",
    "UnsupportedSearcher",
    "WorkerCrash",
    "attach_arena",
    "build_sharded_snapshot",
    "build_snapshot",
    "canonical_array",
    "materialize",
    "materialize_shard",
    "parallel_available",
    "reset_fixup_counters",
    "resolve_executor",
    "searcher_kind",
    "sharded_snapshot_refs",
    "sharded_snapshot_token",
    "snapshot_refs",
    "snapshot_token",
]
