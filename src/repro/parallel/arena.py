"""Zero-copy shared-memory snapshots for process-parallel search.

A :class:`SnapshotArena` packs one epoch's read-only arrays — CSR
``indptr``/``indices`` per level, float32 vectors, SQ8/PQ codes, norms,
tombstone masks — into a single named ``multiprocessing.shared_memory``
block.  Worker processes map the block and reconstruct numpy views at
recorded offsets, so the traversal hot path reads the *same physical
pages* as the parent: no pickling, no copies, no per-worker duplication
of the index payload.

Layout: arrays are packed back-to-back at 64-byte-aligned offsets
(cache-line aligned, so a view never straddles a line shared with its
neighbor's tail).  A manifest — one :class:`ArraySpec` per array with
name, offset, shape, dtype, and a sha256 stamp over the bytes — travels
to workers as a small pickle; attaching verifies the stamps, so a
corrupt or torn mapping names the broken array instead of silently
serving garbage adjacency.

Freeze-time hygiene (the GEMM kernels and this arena both need it):
:func:`canonical_array` enforces C-contiguity and the declared dtype,
copying *once* with a counted warning when an input violates the
contract — e.g. a Fortran-ordered or float64 vector matrix smuggled in
through ``VectorStore`` internals.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import secrets
import threading
import warnings
from multiprocessing import shared_memory

import numpy as np

_ALIGN = 64

#: Arrays silently copied into canonical (C-contiguous, declared-dtype)
#: form at freeze time, by role name.  A correctness backstop that is
#: expected to stay empty: every producer in the library already emits
#: canonical arrays, and each role warns at most once per process.
COPY_FIXUPS: dict[str, int] = {}

_WARNED: set[str] = set()
_FIXUP_LOCK = threading.Lock()


def reset_fixup_counters() -> None:
    """Clear the freeze-time copy counters (test isolation hook)."""
    with _FIXUP_LOCK:
        COPY_FIXUPS.clear()
        _WARNED.clear()


def canonical_array(
    name: str, array: np.ndarray, dtype=None
) -> np.ndarray:
    """Return ``array`` as C-contiguous with the declared dtype.

    The no-copy path is the contract; a violation (wrong dtype, Fortran
    order, or a strided view) is repaired with one copy, counted in
    :data:`COPY_FIXUPS` and warned once per role so the producer can be
    fixed at the source.
    """
    array = np.asarray(array)
    want = array.dtype if dtype is None else np.dtype(dtype)
    if array.dtype == want and array.flags.c_contiguous:
        return array
    with _FIXUP_LOCK:
        COPY_FIXUPS[name] = COPY_FIXUPS.get(name, 0) + 1
        first = name not in _WARNED
        _WARNED.add(name)
    if first:
        warnings.warn(
            f"snapshot array {name!r} was {array.dtype}/"
            f"{'C' if array.flags.c_contiguous else 'non-contiguous'} "
            f"instead of {want}/C-contiguous; copied once at freeze "
            "time — fix the producer to avoid the copy",
            RuntimeWarning,
            stacklevel=2,
        )
    return np.ascontiguousarray(array, dtype=want)


@dataclasses.dataclass(frozen=True)
class ArraySpec:
    """Where one array lives inside an arena block.

    Attributes:
        name: role name (``"vectors"``, ``"L0.indices"``, ...).
        offset: byte offset of the array's first element in the block.
        shape: array shape.
        dtype: numpy dtype string (``np.dtype(spec.dtype)`` rebuilds it).
        sha256: hex digest over the array's packed bytes.
    """

    name: str
    offset: int
    shape: tuple
    dtype: str
    sha256: str

    @property
    def nbytes(self) -> int:
        """Payload size in bytes."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _digest(view: np.ndarray) -> str:
    return hashlib.sha256(view.tobytes()).hexdigest()


class SnapshotArena:
    """One epoch's arrays frozen into a named shared-memory block.

    Build with :meth:`create` in the publishing process; workers attach
    through :func:`attach_arena` using the picklable :meth:`manifest`.
    The creating side owns the block's lifetime (:meth:`unlink`);
    attachments only unmap (:meth:`close`).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        specs: dict[str, ArraySpec],
        token: str,
        owner: bool,
    ) -> None:
        self.shm = shm
        self.specs = specs
        self.token = token
        self._owner = owner
        self._views: dict[str, np.ndarray] = {}
        self._closed = False

    @classmethod
    def create(
        cls, arrays: dict[str, np.ndarray], token: str
    ) -> "SnapshotArena":
        """Pack ``arrays`` into a fresh shared-memory block.

        Every array passes through :func:`canonical_array` (with its own
        dtype as the declared one — producers canonicalize dtypes before
        handing arrays here), so the block holds a dense C-order image
        that views reconstruct without any deserialization step.
        """
        packed: dict[str, np.ndarray] = {}
        offset = 0
        layout: list[tuple[str, int, np.ndarray]] = []
        for name in sorted(arrays):
            arr = canonical_array(name, arrays[name])
            offset = _aligned(offset)
            layout.append((name, offset, arr))
            packed[name] = arr
            offset += arr.nbytes
        total = max(offset, 1)
        name = f"repro-arena-{os.getpid():x}-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        specs: dict[str, ArraySpec] = {}
        for role, off, arr in layout:
            dest = np.ndarray(arr.shape, dtype=arr.dtype,
                              buffer=shm.buf, offset=off)
            dest[...] = arr
            specs[role] = ArraySpec(
                name=role, offset=off, shape=tuple(arr.shape),
                dtype=arr.dtype.str, sha256=_digest(dest),
            )
        return cls(shm, specs, token, owner=True)

    def manifest(self) -> dict:
        """Picklable description workers attach from."""
        return {
            "shm_name": self.shm.name,
            "token": self.token,
            "size": self.shm.size,
            "arrays": [dataclasses.asdict(s) for s in self.specs.values()],
        }

    def view(self, name: str) -> np.ndarray:
        """Read-only view of one packed array (cached)."""
        got = self._views.get(name)
        if got is None:
            spec = self.specs[name]
            got = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                             buffer=self.shm.buf, offset=spec.offset)
            got.flags.writeable = False
            self._views[name] = got
        return got

    def views(self) -> dict[str, np.ndarray]:
        """All packed arrays as read-only views."""
        return {name: self.view(name) for name in self.specs}

    @property
    def nbytes(self) -> int:
        """Size of the shared block in bytes."""
        return self.shm.size

    def verify(self) -> None:
        """Re-hash every array against its manifest stamp.

        Raises:
            ValueError: naming the first array whose bytes do not match
                its sha256 stamp.
        """
        for name, spec in self.specs.items():
            actual = _digest(self.view(name))
            if actual != spec.sha256:
                raise ValueError(
                    f"arena {self.shm.name!r} array {name!r} failed its "
                    f"sha256 check (expected {spec.sha256[:12]}..., got "
                    f"{actual[:12]}...)"
                )

    def close(self) -> None:
        """Unmap the block (idempotent).  Views become invalid."""
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        self.shm.close()

    def unlink(self) -> None:
        """Destroy the block (owner side; idempotent, unmaps first)."""
        self.close()
        if self._owner:
            self._owner = False
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self) -> None:
        try:
            self.unlink() if self._owner else self.close()
        except Exception:
            pass


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker adoption.

    On Python < 3.13 every ``SharedMemory(name=...)`` attachment
    registers the segment with the resource tracker, which unlinks it
    when the attaching process is deemed to have leaked it — a crashing
    worker would destroy the arena under everyone else.  Suppressing
    the registration during attach restores "creator owns the
    lifetime" semantics (3.13's ``track=False``, backported).
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_arena(manifest: dict, verify: bool = True) -> SnapshotArena:
    """Map a published arena from its :meth:`SnapshotArena.manifest`.

    Args:
        manifest: the creator's manifest dict.
        verify: re-hash every array against its sha256 stamp (one pass
            over the block at pin time; catches corrupt mappings before
            any query reads them).
    """
    shm = _attach_untracked(manifest["shm_name"])
    specs = {
        entry["name"]: ArraySpec(
            name=entry["name"], offset=int(entry["offset"]),
            shape=tuple(entry["shape"]), dtype=entry["dtype"],
            sha256=entry["sha256"],
        )
        for entry in manifest["arrays"]
    }
    arena = SnapshotArena(shm, specs, manifest["token"], owner=False)
    if verify:
        try:
            arena.verify()
        except Exception:
            arena.close()
            raise
    return arena


def parallel_available() -> bool:
    """Whether this platform can serve shared-memory arenas at all.

    Probes by round-tripping a tiny block; False (e.g. no ``/dev/shm``
    mount, seccomp-denied ``shm_open``) routes ``executor="process"``
    callers onto the thread fallback.
    """
    try:
        shm = shared_memory.SharedMemory(
            name=f"repro-probe-{os.getpid():x}-{secrets.token_hex(4)}",
            create=True, size=64,
        )
    except Exception:
        return False
    try:
        shm.buf[0] = 42
        ok = shm.buf[0] == 42
    except Exception:
        ok = False
    finally:
        shm.close()
        try:
            shm.unlink()
        except Exception:
            pass
    return ok


@dataclasses.dataclass
class ArenaRecord:
    """One published arena plus the bookkeeping the manager needs.

    Attributes:
        arena: the shared block.
        spec: the searcher-reconstruction spec shipped alongside.
        refs: parent-side objects pinned for the record's lifetime so
            the ``id()``-based epoch token can never be recycled while
            this arena is live.
        refcount: in-flight batches reading the arena.
        retired: True once a newer epoch replaced this record; a
            retired record unlinks when its refcount drains.
    """

    arena: SnapshotArena
    spec: object
    refs: tuple
    refcount: int = 0
    retired: bool = False

    @property
    def token(self) -> str:
        """The epoch token the arena was published under."""
        return self.arena.token


class ArenaManager:
    """Publish/retire lifecycle for a searcher's snapshot arenas.

    One manager per engine (or sharded front).  ``publish`` freezes a
    new epoch and retires the previous one; retired arenas are
    refcounted and unlink only when their last in-flight batch
    releases, so compaction (the PR 9 lifecycle) can swap epochs while
    older batches finish on the old pages.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: ArenaRecord | None = None
        self._retired: list[ArenaRecord] = []
        self.published = 0
        self.retired_unlinked = 0

    @property
    def current(self) -> ArenaRecord | None:
        """The live record, or None before the first publish."""
        return self._current

    def publish(
        self, token: str, arrays: dict[str, np.ndarray], spec,
        refs: tuple = (),
    ) -> ArenaRecord:
        """Freeze ``arrays`` as the new current epoch, retiring the old."""
        record = ArenaRecord(
            arena=SnapshotArena.create(arrays, token), spec=spec,
            refs=refs,
        )
        with self._lock:
            old = self._current
            self._current = record
            self.published += 1
            if old is not None:
                old.retired = True
                if old.refcount == 0:
                    old.arena.unlink()
                    self.retired_unlinked += 1
                else:
                    self._retired.append(old)
        return record

    def acquire(self, record: ArenaRecord) -> ArenaRecord:
        """Pin a record for one in-flight batch."""
        with self._lock:
            record.refcount += 1
        return record

    def release(self, record: ArenaRecord) -> None:
        """Drop a batch's pin; unlinks the arena if retired and drained."""
        with self._lock:
            record.refcount -= 1
            if record.retired and record.refcount <= 0:
                record.arena.unlink()
                if record in self._retired:
                    self._retired.remove(record)
                self.retired_unlinked += 1

    def live_arenas(self) -> int:
        """Arenas currently holding shared memory (current + draining)."""
        with self._lock:
            return (1 if self._current is not None else 0) + len(self._retired)

    def close(self) -> None:
        """Unlink everything (idempotent); in-flight readers be damned —
        callers drain batches before closing."""
        with self._lock:
            records = ([self._current] if self._current is not None else [])
            records += self._retired
            self._current = None
            self._retired = []
        for record in records:
            record.arena.unlink()
