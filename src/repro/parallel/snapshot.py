"""Searcher ⇄ arena translation: build specs, materialize workers' views.

:func:`build_snapshot` decomposes a built ACORN index into (a) a small
picklable :class:`IndexSpec` — parameters, entry point, codec constants
— and (b) the big read-only arrays destined for a
:class:`~repro.parallel.arena.SnapshotArena`.  :func:`materialize`
inverts it inside a worker: a *real* ``AcornIndex`` /
``AcornOneIndex`` / ``FlatAcornIndex`` instance is reconstructed whose
store, frozen CSR levels, and quantized codes are views straight into
the shared block.  Because workers then execute the exact same search
methods over byte-identical arrays, process-parallel results match the
thread path bit for bit — the determinism contract
``docs/parallelism.md`` documents and the equivalence suite pins.

Searchers outside the supported set (routers, lifecycle indices whose
epoch state lives in Python objects, fault-injection wrappers) raise
:class:`UnsupportedSearcher`; the engine catches it and falls back to
the thread executor.
"""

from __future__ import annotations

import dataclasses
import threading

import numpy as np

from repro.core.acorn import AcornIndex, AcornOneIndex
from repro.core.flat import FlatAcornIndex
from repro.core.search import FrozenLevel
from repro.parallel.arena import canonical_array
from repro.vectors.distance import Metric
from repro.vectors.quantized_store import QuantizedStore
from repro.vectors.store import VectorStore


class UnsupportedSearcher(RuntimeError):
    """The searcher cannot be shipped to worker processes.

    Raised by :func:`snapshot_token` / :func:`build_snapshot`; callers
    treat it as "fall back to the thread executor", never as an error.
    """


#: Exact-type registry of process-executable searchers.  Exact on
#: purpose: an unknown subclass may carry Python-side state the spec
#: would silently drop, so it must take the thread path instead.
_KINDS: dict[type, str] = {
    AcornIndex: "acorn",
    AcornOneIndex: "acorn1",
    FlatAcornIndex: "flat",
}
_CLASSES = {kind: cls for cls, kind in _KINDS.items()}


@dataclasses.dataclass(frozen=True)
class IndexSpec:
    """Everything a worker needs beyond the arena arrays.

    Attributes:
        kind: registry key naming the concrete index class.
        dim / n / n_rows: vector dim, stored vectors, table rows.
        metric: metric value string.
        entry_point / entry_level / graph_len: the graph stub's state.
        params: the index's ``AcornParams`` (picklable dataclass).
        expansions: per level, the ``m_beta`` keys whose materialized
            expansion CSRs ride in the arena.
        has_norms: whether a cosine norm cache array is present.
        quant: ``None`` or the codec constants dict (config plus the
            small ``min``/``scale`` or ``codebooks`` arrays — these are
            KBs, so they ship in the spec pickle rather than the arena).
    """

    kind: str
    dim: int
    n: int
    n_rows: int
    metric: str
    entry_point: int
    entry_level: int
    graph_len: int
    params: object
    expansions: tuple
    has_norms: bool
    quant: dict | None


@dataclasses.dataclass(frozen=True)
class ShardedSpec:
    """Spec for a sharded front: one (possibly empty) entry per shard.

    Array roles are prefixed ``s{i}.`` in the shared arena; empty
    shards contribute no arrays and a ``None`` spec slot.
    """

    shards: tuple


class _GraphStub:
    """The slice of ``LayeredGraph`` the search path reads.

    Search needs the entry point, its level, and the node count;
    everything else lives in the frozen CSR snapshot.  Asking for any
    other node's level is a contract violation, not a fallback.
    """

    __slots__ = ("entry_point", "_entry_level", "_n")

    def __init__(self, entry_point: int, entry_level: int, n: int) -> None:
        self.entry_point = entry_point
        self._entry_level = entry_level
        self._n = n

    def __len__(self) -> int:
        return self._n

    def node_level(self, node_id: int) -> int:
        if node_id != self.entry_point:
            raise RuntimeError(
                "snapshot graph stub only knows the entry point's level; "
                f"asked for node {node_id}"
            )
        return self._entry_level


class _TableStub:
    """Length-only table stand-in.

    Workers receive predicates pre-compiled to masks, so the index's
    ``_compile`` only ever length-checks the table.  Anything that
    would *evaluate* a predicate must not reach a worker.
    """

    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        self._n = n

    def __len__(self) -> int:
        return self._n


def _quant_spec_and_arrays(index, arrays: dict, prefix: str) -> dict | None:
    """Extract the quantized store's codes + codec constants, if any."""
    qs = index._quant_store()
    if qs is None:
        return None
    if qs.codec is None or qs.codes is None:
        return None
    arrays[prefix + "quant.codes"] = canonical_array(
        prefix + "quant.codes", qs.codes, dtype=np.uint8
    )
    quant: dict = {"config": qs.config, "kind": qs.config.kind}
    if qs._row_sq is not None:
        arrays[prefix + "quant.row_sq"] = canonical_array(
            prefix + "quant.row_sq", qs._row_sq
        )
        quant["has_row_sq"] = True
    else:
        quant["has_row_sq"] = False
    if qs._row_norm is not None:
        arrays[prefix + "quant.row_norm"] = canonical_array(
            prefix + "quant.row_norm", qs._row_norm
        )
        quant["has_row_norm"] = True
    else:
        quant["has_row_norm"] = False
    if qs.config.kind == "sq8":
        quant["codec"] = {
            "min": np.asarray(qs.codec.min, dtype=np.float32),
            "scale": np.asarray(qs.codec.scale, dtype=np.float32),
        }
    else:
        quant["codec"] = {
            "codebooks": np.stack(qs.codec.codebooks).astype(
                np.float32, copy=False
            ),
        }
    return quant


def searcher_kind(searcher) -> str | None:
    """The registry key for a process-executable searcher, else None."""
    return _KINDS.get(type(searcher))


def snapshot_token(searcher) -> str:
    """Cheap epoch identity for one searcher's current frozen state.

    Built from the object identities of the frozen snapshot, the code
    mirror, and the vector buffer plus the tombstone version — each of
    which changes whenever search-visible state changes (``add``
    invalidates ``_frozen``, deletes bump ``_deleted_version``,
    quantization toggles swap ``_quant``).  The arena record pins those
    same objects, so a live token can never collide via id reuse.

    Raises:
        UnsupportedSearcher: for searcher types outside the registry or
            an empty index (nothing to ship; the sync path answers
            empty batches anyway).
    """
    kind = searcher_kind(searcher)
    if kind is None:
        raise UnsupportedSearcher(
            f"{type(searcher).__name__} is not process-executable"
        )
    if len(searcher.store) == 0 or len(searcher.graph) == 0:
        raise UnsupportedSearcher("empty index has no snapshot to share")
    frozen = searcher.freeze()
    quant = searcher._quant_store() if searcher.quantization is not None else None
    return (
        f"{kind}:{id(searcher):x}:f{id(frozen):x}:"
        f"d{searcher._deleted_version}:n{len(searcher.store)}:"
        f"q{id(quant):x}:b{id(searcher.store._data):x}"
    )


def snapshot_refs(searcher) -> tuple:
    """The objects a live arena record must pin (see token docstring)."""
    return (searcher, searcher._frozen, searcher._quant,
            searcher.store._data)


def build_snapshot(
    searcher, prefix: str = ""
) -> tuple[IndexSpec, dict[str, np.ndarray]]:
    """Decompose one index into a spec and its arena-bound arrays.

    All arrays pass through
    :func:`~repro.parallel.arena.canonical_array` with their canonical
    dtypes (float32 vectors, int32 CSR, uint8 codes, bool tombstones),
    so a mis-dtyped or Fortran-ordered producer is repaired — counted
    and warned — rather than shipped.
    """
    kind = searcher_kind(searcher)
    if kind is None:
        raise UnsupportedSearcher(
            f"{type(searcher).__name__} is not process-executable"
        )
    if len(searcher.store) == 0 or len(searcher.graph) == 0:
        raise UnsupportedSearcher("empty index has no snapshot to share")
    frozen = searcher.freeze()
    n = len(searcher.store)
    arrays: dict[str, np.ndarray] = {}
    arrays[prefix + "vectors"] = canonical_array(
        prefix + "vectors", searcher.store.vectors, dtype=np.float32
    )
    has_norms = searcher.store.metric is Metric.COSINE
    if has_norms:
        arrays[prefix + "norms"] = canonical_array(
            prefix + "norms", searcher.store.base_norms()
        )
    tombstones = np.zeros(n, dtype=bool)
    if searcher._deleted:
        tombstones[list(searcher._deleted)] = True
    arrays[prefix + "tombstones"] = tombstones
    expansions = []
    for lev, level in enumerate(frozen):
        arrays[prefix + f"L{lev}.indptr"] = canonical_array(
            prefix + f"L{lev}.indptr", level.indptr, dtype=np.int32
        )
        arrays[prefix + f"L{lev}.indices"] = canonical_array(
            prefix + f"L{lev}.indices", level.indices, dtype=np.int32
        )
        arrays[prefix + f"L{lev}.node_ids"] = canonical_array(
            prefix + f"L{lev}.node_ids", level.node_ids, dtype=np.int32
        )
        betas = tuple(sorted(level._expansions))
        expansions.append(betas)
        for m_beta in betas:
            exp_indptr, exp_indices = level._expansions[m_beta]
            arrays[prefix + f"L{lev}.e{m_beta}.indptr"] = canonical_array(
                prefix + f"L{lev}.e{m_beta}.indptr", exp_indptr,
                dtype=np.int32,
            )
            arrays[prefix + f"L{lev}.e{m_beta}.indices"] = canonical_array(
                prefix + f"L{lev}.e{m_beta}.indices", exp_indices,
                dtype=np.int32,
            )
    quant = _quant_spec_and_arrays(searcher, arrays, prefix)
    entry = searcher.graph.entry_point
    spec = IndexSpec(
        kind=kind,
        dim=searcher.store.dim,
        n=n,
        n_rows=len(searcher.table),
        metric=searcher.store.metric.value,
        entry_point=entry,
        entry_level=searcher.graph.node_level(entry),
        graph_len=len(searcher.graph),
        params=searcher.params,
        expansions=tuple(expansions),
        has_norms=has_norms,
        quant=quant,
    )
    return spec, arrays


def _materialize_store(spec: IndexSpec, arrays, prefix: str) -> VectorStore:
    store = VectorStore.__new__(VectorStore)
    store.dim = spec.dim
    store.metric = Metric(spec.metric)
    store._data = arrays[prefix + "vectors"]
    store._size = spec.n
    if spec.has_norms:
        store._norms = arrays[prefix + "norms"]
        store._norm_size = spec.n
    else:
        store._norms = np.empty(0, dtype=np.float32)
        store._norm_size = 0
    return store


def _materialize_quant(spec: IndexSpec, arrays, prefix: str, metric):
    if spec.quant is None:
        return None
    from repro.vectors.quantization import ProductQuantizer, ScalarQuantizer

    quant = spec.quant
    qs = QuantizedStore.__new__(QuantizedStore)
    qs.config = quant["config"]
    qs.metric = metric
    if quant["kind"] == "sq8":
        codec = ScalarQuantizer.__new__(ScalarQuantizer)
        codec.min = quant["codec"]["min"]
        codec.scale = quant["codec"]["scale"]
        codec.dim = int(codec.min.shape[0])
    else:
        books = quant["codec"]["codebooks"]
        codec = ProductQuantizer.__new__(ProductQuantizer)
        codec.n_subspaces = int(books.shape[0])
        codec.sub_dim = int(books.shape[2])
        codec.dim = codec.n_subspaces * codec.sub_dim
        codec.codebooks = [books[sub] for sub in range(books.shape[0])]
    qs.codec = codec
    qs.codes = arrays[prefix + "quant.codes"]
    qs._row_sq = (arrays[prefix + "quant.row_sq"]
                  if quant["has_row_sq"] else None)
    qs._row_norm = (arrays[prefix + "quant.row_norm"]
                    if quant["has_row_norm"] else None)
    return qs


def materialize(spec: IndexSpec, arrays, prefix: str = ""):
    """Reconstruct a searchable index over arena-backed array views.

    ``arrays`` is any mapping of role name → ndarray — an attached
    arena's :meth:`~repro.parallel.arena.SnapshotArena.views` in
    workers, or the raw freeze-time dict for in-process equivalence
    tests.  No array data is copied: the store, every frozen level, and
    the code mirror reference the provided buffers directly.
    """
    cls = _CLASSES[spec.kind]
    index = cls.__new__(cls)
    index.params = spec.params
    index.table = _TableStub(spec.n_rows)
    index.store = _materialize_store(spec, arrays, prefix)
    index.graph = _GraphStub(spec.entry_point, spec.entry_level,
                             spec.graph_len)
    frozen = []
    for lev, betas in enumerate(spec.expansions):
        level = FrozenLevel(
            arrays[prefix + f"L{lev}.indptr"],
            arrays[prefix + f"L{lev}.indices"],
            arrays[prefix + f"L{lev}.node_ids"],
        )
        for m_beta in betas:
            level._expansions[int(m_beta)] = (
                arrays[prefix + f"L{lev}.e{m_beta}.indptr"],
                arrays[prefix + f"L{lev}.e{m_beta}.indices"],
            )
        frozen.append(level)
    index._frozen = frozen
    index._labels = None
    index._levels = None
    index._edge_dists = []
    index.quantization = (spec.quant["config"]
                          if spec.quant is not None else None)
    index._quant = _materialize_quant(spec, arrays, prefix,
                                      index.store.metric)
    deleted = np.flatnonzero(arrays[prefix + "tombstones"])
    index._deleted = set(int(node) for node in deleted)
    index._deleted_version = 0
    index._mask_cache = {}
    index._mask_cache_lock = threading.Lock()
    index._masked_csr_cache = {}
    index._masked_csr_lock = threading.Lock()
    return index


def build_sharded_snapshot(sharded) -> tuple[ShardedSpec, dict[str, np.ndarray]]:
    """Decompose a ``ShardedAcornIndex``'s shards into one shared arena.

    Raises:
        UnsupportedSearcher: when any shard is outside the registry
            (e.g. fault-injection wrappers) or per-shard route planners
            are attached (their feedback state is parent-side Python).
    """
    if getattr(sharded, "_shard_planners", None) is not None:
        raise UnsupportedSearcher(
            "per-shard route planners keep parent-side feedback state"
        )
    specs = []
    arrays: dict[str, np.ndarray] = {}
    for i, shard in enumerate(sharded.shards):
        if len(shard) == 0:
            specs.append(None)
            continue
        spec, shard_arrays = build_snapshot(shard, prefix=f"s{i}.")
        specs.append(spec)
        arrays.update(shard_arrays)
    return ShardedSpec(shards=tuple(specs)), arrays


def sharded_snapshot_token(sharded) -> str:
    """Epoch token over every shard (see :func:`snapshot_token`)."""
    if getattr(sharded, "_shard_planners", None) is not None:
        raise UnsupportedSearcher(
            "per-shard route planners keep parent-side feedback state"
        )
    parts = []
    for shard in sharded.shards:
        if len(shard) == 0:
            parts.append("empty")
        else:
            parts.append(snapshot_token(shard))
    return f"sharded:{id(sharded):x}:" + "|".join(parts)


def sharded_snapshot_refs(sharded) -> tuple:
    """Pinned objects for a sharded arena record."""
    refs: list = [sharded]
    for shard in sharded.shards:
        if len(shard):
            refs.extend(snapshot_refs(shard))
    return tuple(refs)


def materialize_shard(spec: ShardedSpec, arrays, shard_id: int):
    """Reconstruct one shard of a sharded arena (None when empty)."""
    shard_spec = spec.shards[shard_id]
    if shard_spec is None:
        return None
    return materialize(shard_spec, arrays, prefix=f"s{shard_id}.")
