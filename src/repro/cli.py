"""Command-line interface: ``python -m repro ...``.

Lets a user regenerate the paper's comparisons on any of the four
dataset surrogates without touching pytest::

    python -m repro sweep --dataset sift --n 4000 --methods acorn,acorn1,pre,post
    python -m repro correlation --n 2000
    python -m repro bench-batch --n 10000 --queries 256 --workers 4
    python -m repro info

Every command prints the same text tables the benchmark harness emits;
``bench-batch`` additionally appends a JSON record to
``BENCH_engine.json``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from pathlib import Path

import numpy as np

import repro
from repro.attributes import AttributeTable
from repro.baselines import PostFilterSearcher, PreFilterSearcher
from repro.core import AcornIndex, AcornOneIndex, AcornParams
from repro.datasets import (
    make_laion_like,
    make_paper_like,
    make_sift1m_like,
    make_tripclick_like,
    query_correlation,
)
from repro.engine import QueryBatch, SearchEngine
from repro.eval import SweepRunner, percentile_summary, render_sweeps
from repro.hnsw import HnswIndex
from repro.predicates import RegexMatch
from repro.utils.timer import Timer

DATASETS = {
    "sift": lambda n, nq, seed: make_sift1m_like(n=n, dim=48, n_queries=nq,
                                                 seed=seed),
    "paper": lambda n, nq, seed: make_paper_like(n=n, dim=72, n_queries=nq,
                                                 seed=seed),
    "tripclick": lambda n, nq, seed: make_tripclick_like(
        n=n, dim=96, n_queries=nq, workload="areas", seed=seed
    ),
    "laion": lambda n, nq, seed: make_laion_like(
        n=n, dim=64, n_queries=nq, workload="no-cor", seed=seed
    ),
}


def _build_methods(names: list[str], dataset, m: int, gamma: int, seed: int):
    methods = {}
    for name in names:
        with Timer() as t:
            if name == "acorn":
                params = AcornParams(m=m, gamma=gamma, m_beta=2 * m,
                                     ef_construction=40)
                methods["ACORN-gamma"] = AcornIndex.build(
                    dataset.vectors, dataset.table, params=params, seed=seed
                )
            elif name == "acorn1":
                methods["ACORN-1"] = AcornOneIndex.build(
                    dataset.vectors, dataset.table, m=2 * m,
                    ef_construction=40, seed=seed,
                )
            elif name == "pre":
                methods["pre-filter"] = PreFilterSearcher(
                    dataset.vectors, dataset.table
                )
            elif name == "post":
                hnsw = HnswIndex.build(dataset.vectors, m=m,
                                       ef_construction=48, seed=seed)
                methods["HNSW post-filter"] = PostFilterSearcher(
                    hnsw, dataset.table, max_oversearch=0.5
                )
            else:
                raise SystemExit(
                    f"unknown method {name!r}; choose from acorn, acorn1, "
                    "pre, post"
                )
        print(f"  built {name} in {t.elapsed:.1f}s")
    return methods


def _cmd_sweep(args: argparse.Namespace) -> None:
    maker = DATASETS[args.dataset]
    print(f"generating {args.dataset}-like dataset "
          f"(n={args.n}, queries={args.queries})...")
    dataset = maker(args.n, args.queries, args.seed)
    print(f"average predicate selectivity: "
          f"{dataset.selectivities().mean():.3f}")
    methods = _build_methods(
        args.methods.split(","), dataset, args.m, args.gamma, args.seed
    )
    runner = SweepRunner(dataset, k=args.k)
    efforts = [int(e) for e in args.efforts.split(",")]
    sweeps = [
        runner.sweep(name, method, efforts=efforts)
        for name, method in methods.items()
    ]
    print()
    print(render_sweeps(sweeps, recall_target=args.recall_target))


def _cmd_correlation(args: argparse.Namespace) -> None:
    print(f"measuring C(D,Q) on LAION-like workloads (n={args.n})...")
    for workload in ("pos-cor", "no-cor", "neg-cor", "regex"):
        dataset = make_laion_like(n=args.n, dim=64, n_queries=args.queries,
                                  workload=workload, seed=args.seed)
        c = query_correlation(dataset, n_resamples=5, seed=0)
        print(f"  {workload:>8}: selectivity="
              f"{dataset.selectivities().mean():.3f}  C={c:+10.2f}")


_BENCH_VOCAB = [
    "amber", "basalt", "cedar", "delta", "ember", "fjord", "garnet",
    "harbor", "indigo", "juniper", "krypton", "lagoon", "meadow",
    "nimbus", "onyx", "prairie", "quartz", "russet", "sierra", "tundra",
    "umber", "violet", "willow", "xenon", "yarrow", "zephyr",
]


def _make_bench_world(n: int, dim: int, n_queries: int, distinct: int,
                      seed: int):
    """Synthetic serving workload: clustered vectors, caption column,
    and a query stream cycling through ``distinct`` regex predicates."""
    gen = np.random.default_rng(seed)
    centers = gen.standard_normal((16, dim)).astype(np.float32)
    assign = gen.integers(0, 16, size=n)
    vectors = (centers[assign]
               + 0.35 * gen.standard_normal((n, dim))).astype(np.float32)
    captions = [
        " ".join(gen.choice(_BENCH_VOCAB, size=8, replace=False))
        for _ in range(n)
    ]
    table = AttributeTable(n)
    table.add_string_column("caption", captions)
    words = list(gen.choice(_BENCH_VOCAB, size=distinct, replace=False))
    predicates = [
        RegexMatch("caption", rf"\b{words[i % distinct]}\b")
        for i in range(n_queries)
    ]
    queries = vectors[gen.choice(n, size=n_queries, replace=False)].copy()
    return vectors, table, queries, predicates


def _cmd_bench_batch(args: argparse.Namespace) -> None:
    print(f"generating serving workload (n={args.n}, dim={args.dim}, "
          f"queries={args.queries}, {args.distinct_predicates} distinct "
          "regex predicates)...")
    vectors, table, queries, predicates = _make_bench_world(
        args.n, args.dim, args.queries, args.distinct_predicates, args.seed
    )
    params = AcornParams(m=args.m, gamma=args.gamma, m_beta=2 * args.m,
                         ef_construction=40)
    with Timer() as t:
        index = AcornIndex.build(vectors, table, params=params, seed=args.seed)
    print(f"built ACORN-gamma (m={args.m}, gamma={args.gamma}) "
          f"in {t.elapsed:.1f}s")
    index.freeze()

    # Baseline: the pre-engine serving path — one query at a time, each
    # call re-materializing its predicate mask.
    with Timer() as t:
        seq_results = [
            index.search(q, p, args.k, ef_search=args.ef)
            for q, p in zip(queries, predicates)
        ]
    seq_qps = len(queries) / t.elapsed

    batch = QueryBatch.build(queries, predicates, k=args.k,
                             ef_search=args.ef)
    outcomes = {}
    for workers in sorted({1, args.workers}):
        with SearchEngine(index, num_workers=workers) as engine:
            with Timer() as t:
                outcome = engine.search_batch(batch)
            outcomes[workers] = (outcome, len(queries) / t.elapsed)

    outcome, engine_qps = outcomes[args.workers]
    for seq, bat in zip(seq_results, outcome.results):
        if not np.array_equal(seq.ids, bat.ids):
            raise SystemExit("engine results diverged from sequential loop")
    latency = percentile_summary(s.wall_time_s for s in outcome.stats)
    ncomp = percentile_summary(s.distance_computations for s in outcome.stats)
    speedup = engine_qps / seq_qps

    print(f"\nsequential loop     : {seq_qps:10.1f} qps")
    for workers, (_, qps) in sorted(outcomes.items()):
        print(f"engine, {workers:2d} worker(s) : {qps:10.1f} qps "
              f"({qps / seq_qps:.2f}x)")
    print(f"cache               : {outcome.cache_hits} hits / "
          f"{outcome.cache_misses} misses")
    print(f"latency p50/p95/p99 : {latency.p50 * 1e3:.2f} / "
          f"{latency.p95 * 1e3:.2f} / {latency.p99 * 1e3:.2f} ms")
    print(f"distance comps p50  : {ncomp.p50:.0f} per query")

    entry = {
        "bench": "engine-batch",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": args.n,
        "dim": args.dim,
        "queries": args.queries,
        "k": args.k,
        "ef_search": args.ef,
        "index": "acorn-gamma",
        "m": args.m,
        "gamma": args.gamma,
        "distinct_predicates": args.distinct_predicates,
        "workers": args.workers,
        "sequential_qps": round(seq_qps, 2),
        "engine_qps_by_workers": {
            str(w): round(qps, 2) for w, (_, qps) in outcomes.items()
        },
        "engine_qps": round(engine_qps, 2),
        "speedup_vs_sequential": round(speedup, 3),
        "latency_s": dataclasses.asdict(latency),
        "distance_computations": dataclasses.asdict(ncomp),
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
    }
    out = Path(args.out)
    entries = json.loads(out.read_text()) if out.exists() else []
    entries.append(entry)
    out.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"\nrecorded entry in {out} "
          f"(speedup vs sequential: {speedup:.2f}x)")


def _cmd_info(_args: argparse.Namespace) -> None:
    print(f"repro {repro.__version__} — ACORN (SIGMOD 2024) reproduction")
    print(f"numpy {np.__version__}")
    print("datasets:", ", ".join(DATASETS))
    print("see DESIGN.md / EXPERIMENTS.md for the experiment index")


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ACORN hybrid-search reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="recall-QPS sweep on a dataset")
    sweep.add_argument("--dataset", choices=sorted(DATASETS), default="sift")
    sweep.add_argument("--n", type=int, default=2000)
    sweep.add_argument("--queries", type=int, default=60)
    sweep.add_argument("--k", type=int, default=10)
    sweep.add_argument("--m", type=int, default=12)
    sweep.add_argument("--gamma", type=int, default=12)
    sweep.add_argument("--methods", default="acorn,acorn1,pre,post")
    sweep.add_argument("--efforts", default="10,40,160")
    sweep.add_argument("--recall-target", type=float, default=0.9)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(func=_cmd_sweep)

    corr = sub.add_parser("correlation",
                          help="measure C(D,Q) of the LAION workloads")
    corr.add_argument("--n", type=int, default=1500)
    corr.add_argument("--queries", type=int, default=40)
    corr.add_argument("--seed", type=int, default=3)
    corr.set_defaults(func=_cmd_correlation)

    bench = sub.add_parser(
        "bench-batch",
        help="batched-engine throughput vs a sequential search loop",
    )
    bench.add_argument("--n", type=int, default=10000)
    bench.add_argument("--queries", type=int, default=256)
    bench.add_argument("--dim", type=int, default=32)
    bench.add_argument("--k", type=int, default=10)
    bench.add_argument("--m", type=int, default=12)
    bench.add_argument("--gamma", type=int, default=12)
    bench.add_argument("--ef", type=int, default=32)
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--distinct-predicates", type=int, default=8)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", default="BENCH_engine.json")
    bench.set_defaults(func=_cmd_bench_batch)

    info = sub.add_parser("info", help="version and environment summary")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
