"""Command-line interface: ``python -m repro ...``.

Lets a user regenerate the paper's comparisons on any of the four
dataset surrogates without touching pytest::

    python -m repro sweep --dataset sift --n 4000 --methods acorn,acorn1,pre,post
    python -m repro correlation --n 2000
    python -m repro bench-batch --n 10000 --queries 256 --workers 4
    python -m repro bench-traversal --n 10000 --queries 128
    python -m repro bench-shard --n 10000 --shards 4
    python -m repro bench-chaos --shards 8 --failure-rate 0.2
    python -m repro bench-route --n 10000 --queries 240
    python -m repro bench-quant --n 10000 --queries 128
    python -m repro bench-lifecycle --n 8000 --ops 2000
    python -m repro info

Every command prints the same text tables the benchmark harness emits;
``bench-batch`` additionally appends a JSON record to
``BENCH_engine.json``, ``bench-traversal`` to ``BENCH_traversal.json``
(CSR kernel vs the legacy dict kernel) and ``bench-shard`` to
``BENCH_shard.json`` (scatter-gather over a sharded index vs the single
monolithic index, with router-pruning accounting) and ``bench-chaos``
to ``BENCH_chaos.json`` (resilient scatter-gather under a seeded fault
plan on a deterministic injected clock — degradation accounting,
survivors-only ground-truth agreement, and per-query clock budgets)
and ``bench-route`` to ``BENCH_route.json`` (static s_min threshold
routing vs the adaptive cost-based planner on a correlated /
anti-correlated workload, with per-route accounting and estimator
error) and ``bench-quant`` to ``BENCH_quant.json`` (the quantized
int8/PQ-ADC traversal hot path with its exact-rerank tail vs the
float32 search on the same graph — batch-QPS speedup, recall floor,
and a double-run determinism gate) and ``bench-lifecycle`` to
``BENCH_lifecycle.json`` (read QPS and exact recall under a concurrent
seeded write stream with online compaction — gated on a double
virtual-replay determinism check and on zero failed or blocked reads)
and ``bench-parallel`` to ``BENCH_parallel.json`` (the zero-copy
shared-memory process executor vs the thread executor at 1/2/4/8
workers — gated on byte-identity to the sequential loop, a double-run
determinism check, in-worker shared-memory buffer identity, and, on
machines with >= 4 CPUs, a 2x process-vs-thread batch-QPS floor;
``--smoke`` turns any of them into a CI regression gate).
``bench-report`` aggregates every ``BENCH_*.json`` in a directory into
one markdown perf-trajectory table (``BENCH_REPORT.md``) and an
optional CSV.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from pathlib import Path

import numpy as np

import repro
from repro.attributes import AttributeTable
from repro.baselines import PostFilterSearcher, PreFilterSearcher
from repro.core import AcornIndex, AcornOneIndex, AcornParams
from repro.datasets import (
    make_laion_like,
    make_paper_like,
    make_sift1m_like,
    make_tripclick_like,
    query_correlation,
)
from repro.engine import QueryBatch, SearchEngine
from repro.eval import SweepRunner, percentile_summary, render_sweeps
from repro.hnsw import HnswIndex
from repro.predicates import RegexMatch
from repro.utils.timer import Timer

DATASETS = {
    "sift": lambda n, nq, seed: make_sift1m_like(n=n, dim=48, n_queries=nq,
                                                 seed=seed),
    "paper": lambda n, nq, seed: make_paper_like(n=n, dim=72, n_queries=nq,
                                                 seed=seed),
    "tripclick": lambda n, nq, seed: make_tripclick_like(
        n=n, dim=96, n_queries=nq, workload="areas", seed=seed
    ),
    "laion": lambda n, nq, seed: make_laion_like(
        n=n, dim=64, n_queries=nq, workload="no-cor", seed=seed
    ),
}


def _build_methods(names: list[str], dataset, m: int, gamma: int, seed: int):
    methods = {}
    for name in names:
        with Timer() as t:
            if name == "acorn":
                params = AcornParams(m=m, gamma=gamma, m_beta=2 * m,
                                     ef_construction=40)
                methods["ACORN-gamma"] = AcornIndex.build(
                    dataset.vectors, dataset.table, params=params, seed=seed
                )
            elif name == "acorn1":
                methods["ACORN-1"] = AcornOneIndex.build(
                    dataset.vectors, dataset.table, m=2 * m,
                    ef_construction=40, seed=seed,
                )
            elif name == "pre":
                methods["pre-filter"] = PreFilterSearcher(
                    dataset.vectors, dataset.table
                )
            elif name == "post":
                hnsw = HnswIndex.build(dataset.vectors, m=m,
                                       ef_construction=48, seed=seed)
                methods["HNSW post-filter"] = PostFilterSearcher(
                    hnsw, dataset.table, max_oversearch=0.5
                )
            else:
                raise SystemExit(
                    f"unknown method {name!r}; choose from acorn, acorn1, "
                    "pre, post"
                )
        print(f"  built {name} in {t.elapsed:.1f}s")
    return methods


def _cmd_sweep(args: argparse.Namespace) -> None:
    maker = DATASETS[args.dataset]
    print(f"generating {args.dataset}-like dataset "
          f"(n={args.n}, queries={args.queries})...")
    dataset = maker(args.n, args.queries, args.seed)
    print(f"average predicate selectivity: "
          f"{dataset.selectivities().mean():.3f}")
    methods = _build_methods(
        args.methods.split(","), dataset, args.m, args.gamma, args.seed
    )
    runner = SweepRunner(dataset, k=args.k)
    efforts = [int(e) for e in args.efforts.split(",")]
    sweeps = [
        runner.sweep(name, method, efforts=efforts)
        for name, method in methods.items()
    ]
    print()
    print(render_sweeps(sweeps, recall_target=args.recall_target))


def _cmd_correlation(args: argparse.Namespace) -> None:
    print(f"measuring C(D,Q) on LAION-like workloads (n={args.n})...")
    for workload in ("pos-cor", "no-cor", "neg-cor", "regex"):
        dataset = make_laion_like(n=args.n, dim=64, n_queries=args.queries,
                                  workload=workload, seed=args.seed)
        c = query_correlation(dataset, n_resamples=5, seed=0)
        print(f"  {workload:>8}: selectivity="
              f"{dataset.selectivities().mean():.3f}  C={c:+10.2f}")


_BENCH_VOCAB = [
    "amber", "basalt", "cedar", "delta", "ember", "fjord", "garnet",
    "harbor", "indigo", "juniper", "krypton", "lagoon", "meadow",
    "nimbus", "onyx", "prairie", "quartz", "russet", "sierra", "tundra",
    "umber", "violet", "willow", "xenon", "yarrow", "zephyr",
]


def _make_bench_world(n: int, dim: int, n_queries: int, distinct: int,
                      seed: int):
    """Synthetic serving workload: clustered vectors, caption column,
    and a query stream cycling through ``distinct`` regex predicates."""
    gen = np.random.default_rng(seed)
    centers = gen.standard_normal((16, dim)).astype(np.float32)
    assign = gen.integers(0, 16, size=n)
    vectors = (centers[assign]
               + 0.35 * gen.standard_normal((n, dim))).astype(np.float32)
    captions = [
        " ".join(gen.choice(_BENCH_VOCAB, size=8, replace=False))
        for _ in range(n)
    ]
    table = AttributeTable(n)
    table.add_string_column("caption", captions)
    words = list(gen.choice(_BENCH_VOCAB, size=distinct, replace=False))
    predicates = [
        RegexMatch("caption", rf"\b{words[i % distinct]}\b")
        for i in range(n_queries)
    ]
    queries = vectors[gen.choice(n, size=n_queries, replace=False)].copy()
    return vectors, table, queries, predicates


def _cmd_bench_batch(args: argparse.Namespace) -> None:
    print(f"generating serving workload (n={args.n}, dim={args.dim}, "
          f"queries={args.queries}, {args.distinct_predicates} distinct "
          "regex predicates)...")
    vectors, table, queries, predicates = _make_bench_world(
        args.n, args.dim, args.queries, args.distinct_predicates, args.seed
    )
    params = AcornParams(m=args.m, gamma=args.gamma, m_beta=2 * args.m,
                         ef_construction=40)
    with Timer() as t:
        index = AcornIndex.build(vectors, table, params=params, seed=args.seed)
    print(f"built ACORN-gamma (m={args.m}, gamma={args.gamma}) "
          f"in {t.elapsed:.1f}s")
    index.freeze()

    # Baseline: the pre-engine serving path — one query at a time, each
    # call re-materializing its predicate mask.
    with Timer() as t:
        seq_results = [
            index.search(q, p, args.k, ef_search=args.ef)
            for q, p in zip(queries, predicates)
        ]
    seq_qps = len(queries) / t.elapsed

    batch = QueryBatch.build(queries, predicates, k=args.k,
                             ef_search=args.ef)
    outcomes = {}
    for workers in sorted({1, args.workers}):
        with SearchEngine(index, num_workers=workers) as engine:
            with Timer() as t:
                outcome = engine.search_batch(batch)
            outcomes[workers] = (outcome, len(queries) / t.elapsed)

    outcome, engine_qps = outcomes[args.workers]
    for seq, bat in zip(seq_results, outcome.results):
        if not np.array_equal(seq.ids, bat.ids):
            raise SystemExit("engine results diverged from sequential loop")
    latency = percentile_summary(s.wall_time_s for s in outcome.stats)
    ncomp = percentile_summary(s.distance_computations for s in outcome.stats)
    speedup = engine_qps / seq_qps

    print(f"\nsequential loop     : {seq_qps:10.1f} qps")
    for workers, (_, qps) in sorted(outcomes.items()):
        print(f"engine, {workers:2d} worker(s) : {qps:10.1f} qps "
              f"({qps / seq_qps:.2f}x)")
    print(f"cache               : {outcome.cache_hits} hits / "
          f"{outcome.cache_misses} misses")
    print(f"latency p50/p95/p99 : {latency.p50 * 1e3:.2f} / "
          f"{latency.p95 * 1e3:.2f} / {latency.p99 * 1e3:.2f} ms")
    print(f"distance comps p50  : {ncomp.p50:.0f} per query")

    entry = {
        "bench": "engine-batch",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": args.n,
        "dim": args.dim,
        "queries": args.queries,
        "k": args.k,
        "ef_search": args.ef,
        "index": "acorn-gamma",
        "m": args.m,
        "gamma": args.gamma,
        "distinct_predicates": args.distinct_predicates,
        "workers": args.workers,
        "sequential_qps": round(seq_qps, 2),
        "engine_qps_by_workers": {
            str(w): round(qps, 2) for w, (_, qps) in outcomes.items()
        },
        "engine_qps": round(engine_qps, 2),
        "speedup_vs_sequential": round(speedup, 3),
        "latency_s": dataclasses.asdict(latency),
        "distance_computations": dataclasses.asdict(ncomp),
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
    }
    out = Path(args.out)
    entries = json.loads(out.read_text()) if out.exists() else []
    entries.append(entry)
    out.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"\nrecorded entry in {out} "
          f"(speedup vs sequential: {speedup:.2f}x)")


# Benchmark-record schemas and validators live in
# repro.eval.benchschema; re-exported here because the CI jobs and
# older tests import them from repro.cli.
from repro.eval.benchschema import (  # noqa: E402  (re-export)
    BUILD_SCHEMA_KEYS,
    CHAOS_SCHEMA_KEYS,
    LIFECYCLE_SCHEMA_KEYS,
    PARALLEL_SCHEMA_KEYS,
    QUANT_SCHEMA_KEYS,
    ROUTE_SCHEMA_KEYS,
    SERVING_SCHEMA_KEYS,
    SHARD_SCHEMA_KEYS,
    TRAVERSAL_SCHEMA_KEYS,
    validate_build_entry,
    validate_chaos_entry,
    validate_lifecycle_entry,
    validate_parallel_entry,
    validate_quant_entry,
    validate_route_entry,
    validate_serving_entry,
    validate_shard_entry,
    validate_traversal_entry,
)


def _time_single_queries(search_one, queries, predicates):
    """Per-query wall times plus total hops for one kernel."""
    times = []
    hops = 0
    for query, predicate in zip(queries, predicates):
        start = time.perf_counter()
        result = search_one(query, predicate)
        times.append(time.perf_counter() - start)
        hops += result.hops
    return times, hops


def _cmd_bench_traversal(args: argparse.Namespace) -> None:
    from repro.core.dictsearch import LegacySearcherAdapter, legacy_acorn_search
    from repro.eval import percentile_summary

    if args.smoke:
        args.n = min(args.n, 1500)
        args.queries = min(args.queries, 32)
    print(f"generating traversal workload (n={args.n}, dim={args.dim}, "
          f"queries={args.queries})...")
    vectors, table, queries, predicates = _make_bench_world(
        args.n, args.dim, args.queries, args.distinct_predicates, args.seed
    )
    params = AcornParams(m=args.m, gamma=args.gamma, m_beta=2 * args.m,
                         ef_construction=40)
    with Timer() as t:
        index = AcornIndex.build(vectors, table, params=params, seed=args.seed)
    print(f"built ACORN-gamma (m={args.m}, gamma={args.gamma}) "
          f"in {t.elapsed:.1f}s")

    adapter = LegacySearcherAdapter(index)
    index.freeze()
    adapter.freeze()
    # Compile predicates once so the single-query loops time graph
    # traversal, not per-call mask materialization (regex compilation
    # dominates otherwise and affects both kernels identically).
    predicates = [predicate.compile(table) for predicate in predicates]

    def run_csr(query, predicate):
        return index.search(query, predicate, args.k, ef_search=args.ef)

    def run_dict(query, predicate):
        return legacy_acorn_search(index, query, predicate, args.k,
                                   ef_search=args.ef,
                                   frozen=adapter.freeze())

    # Warm-up + equivalence guard: the benchmark is meaningless if the
    # two kernels return different work.
    for query, predicate in zip(queries[:4], predicates[:4]):
        before = run_dict(query, predicate)
        after = run_csr(query, predicate)
        if (not np.array_equal(before.ids, after.ids)
                or before.hops != after.hops):
            raise SystemExit("CSR kernel diverged from dict kernel")

    kernels = {}
    for name, runner in (("dict", run_dict), ("csr", run_csr)):
        times, hops = _time_single_queries(runner, queries, predicates)
        total = sum(times)
        latency = percentile_summary(times)
        batch = QueryBatch.build(queries, predicates, k=args.k,
                                 ef_search=args.ef)
        searcher = adapter if name == "dict" else index
        with SearchEngine(searcher, num_workers=args.workers) as engine:
            with Timer() as t:
                engine.search_batch(batch)
        qps = len(queries) / t.elapsed
        kernels[name] = {
            "p50_ms": round(latency.p50 * 1e3, 4),
            "p99_ms": round(latency.p99 * 1e3, 4),
            "batch_qps": round(qps, 2),
            "hops_per_s": round(hops / total, 1) if total else 0.0,
            "total_hops": int(hops),
            "total_seconds": round(total, 4),
        }
        print(f"{name:>4} kernel: p50 {kernels[name]['p50_ms']:8.3f} ms   "
              f"p99 {kernels[name]['p99_ms']:8.3f} ms   "
              f"batch {qps:8.1f} qps   "
              f"{kernels[name]['hops_per_s']:12.1f} hops/s")

    hops_speedup = (kernels["csr"]["hops_per_s"]
                    / max(kernels["dict"]["hops_per_s"], 1e-9))
    single_speedup = (kernels["dict"]["p50_ms"]
                      / max(kernels["csr"]["p50_ms"], 1e-9))
    batch_speedup = (kernels["csr"]["batch_qps"]
                     / max(kernels["dict"]["batch_qps"], 1e-9))
    print(f"\nCSR vs dict: {hops_speedup:.2f}x hops/s, "
          f"{single_speedup:.2f}x single-query, {batch_speedup:.2f}x batch")

    entry = {
        "bench": "traversal-kernel",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": args.n,
        "dim": args.dim,
        "queries": args.queries,
        "k": args.k,
        "ef_search": args.ef,
        "m": args.m,
        "gamma": args.gamma,
        "workers": args.workers,
        "smoke": bool(args.smoke),
        "dict_kernel": kernels["dict"],
        "csr_kernel": kernels["csr"],
        "hops_per_s_speedup": round(hops_speedup, 3),
        "single_query_speedup": round(single_speedup, 3),
        "batch_qps_speedup": round(batch_speedup, 3),
    }
    validate_traversal_entry(entry)
    out = Path(args.out)
    entries = json.loads(out.read_text()) if out.exists() else []
    entries.append(entry)
    out.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"recorded entry in {out}")
    if args.smoke and hops_speedup < 1.0:
        raise SystemExit(
            f"smoke check failed: CSR kernel slower than dict kernel "
            f"({hops_speedup:.2f}x hops/s)"
        )


def _cmd_bench_shard(args: argparse.Namespace) -> None:
    from repro.predicates import Between
    from repro.shard import AttributeRangePartitioner, ShardedAcornIndex

    if args.smoke:
        args.n = min(args.n, 1200)
        args.queries = min(args.queries, 32)
    print(f"generating sharded workload (n={args.n}, dim={args.dim}, "
          f"queries={args.queries}, shards={args.shards})...")
    vectors, table, queries, _ = _make_bench_world(
        args.n, args.dim, args.queries, args.distinct_predicates, args.seed
    )
    # A numeric column the range partitioner can split on, with query
    # windows narrow enough that the router can prove shards empty.
    gen = np.random.default_rng(args.seed + 1)
    years = gen.integers(2000, 2000 + 4 * args.shards, size=args.n)
    table.add_int_column("year", years)
    span = 4 * args.shards
    predicates = [
        Between("year", 2000 + (i * 3) % span,
                2000 + (i * 3) % span + 2)
        for i in range(args.queries)
    ]

    params = AcornParams(m=args.m, gamma=args.gamma, m_beta=2 * args.m,
                         ef_construction=40)
    with Timer() as t:
        reference = AcornIndex.build(vectors, table, params=params,
                                     seed=args.seed)
    print(f"built monolithic ACORN-gamma in {t.elapsed:.1f}s")
    with Timer() as t:
        sharded = ShardedAcornIndex.build(
            vectors, table,
            partitioner=AttributeRangePartitioner("year",
                                                  n_shards=args.shards),
            params=params, seed=args.seed,
        )
    print(f"built {args.shards}-shard ACORN-gamma in {t.elapsed:.1f}s")

    # In smoke mode saturate ef so sharded results are provably
    # identical to the monolithic index (the exhaustive regime).
    ef = args.n if args.smoke else args.ef
    batch = QueryBatch.build(queries, predicates, k=args.k, ef_search=ef)
    outcomes = {}
    for name, searcher in (("unsharded", reference), ("sharded", sharded)):
        with SearchEngine(searcher, num_workers=args.workers) as engine:
            with Timer() as t:
                outcomes[name] = engine.search_batch(batch)
            outcomes[name + "_qps"] = len(queries) / t.elapsed

    identical = all(
        np.array_equal(a.ids, b.ids)
        for a, b in zip(outcomes["unsharded"].results,
                        outcomes["sharded"].results)
    )
    sharded_out = outcomes["sharded"]
    probed = sharded_out.total_shards_probed
    pruned = sharded_out.total_shards_pruned
    prune_fraction = pruned / max(probed + pruned, 1)
    latency = percentile_summary(
        s.wall_time_s for s in sharded_out.stats
    )
    qps_ratio = outcomes["sharded_qps"] / max(outcomes["unsharded_qps"],
                                              1e-9)

    print(f"\nunsharded engine : {outcomes['unsharded_qps']:10.1f} qps")
    print(f"sharded engine   : {outcomes['sharded_qps']:10.1f} qps "
          f"({qps_ratio:.2f}x)")
    print(f"router           : {probed} shard probes, {pruned} pruned "
          f"({prune_fraction:.0%} of shard visits avoided)")
    print(f"results identical: {identical}")

    entry = {
        "bench": "shard-scatter-gather",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": args.n,
        "dim": args.dim,
        "queries": args.queries,
        "k": args.k,
        "ef_search": ef,
        "m": args.m,
        "gamma": args.gamma,
        "n_shards": args.shards,
        "workers": args.workers,
        "smoke": bool(args.smoke),
        "partitioner": sharded.partitioner.spec(),
        "unsharded_qps": round(outcomes["unsharded_qps"], 2),
        "sharded_qps": round(outcomes["sharded_qps"], 2),
        "qps_ratio": round(qps_ratio, 3),
        "shards_probed": int(probed),
        "shards_pruned": int(pruned),
        "prune_fraction": round(prune_fraction, 4),
        "results_identical": bool(identical),
        "latency_s": dataclasses.asdict(latency),
    }
    validate_shard_entry(entry)
    out = Path(args.out)
    entries = json.loads(out.read_text()) if out.exists() else []
    entries.append(entry)
    out.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"recorded entry in {out}")
    if args.smoke:
        if pruned == 0:
            raise SystemExit(
                "smoke check failed: router pruned no shards on "
                "range-partitioned data with selective predicates"
            )
        if not identical:
            raise SystemExit(
                "smoke check failed: sharded results diverged from the "
                "monolithic index in the exhaustive regime"
            )


def _cmd_bench_chaos(args: argparse.Namespace) -> None:
    from repro.shard import (
        FaultInjector,
        FaultPlan,
        HashPartitioner,
        ResiliencePolicy,
        ShardedAcornIndex,
    )
    from repro.utils.clock import FakeClock
    from repro.vectors.distance import pairwise_distances

    if args.smoke:
        args.n = min(args.n, 1200)
        args.queries = min(args.queries, 24)
    print(f"generating chaos workload (n={args.n}, dim={args.dim}, "
          f"queries={args.queries}, shards={args.shards}, "
          f"failure rate={args.failure_rate:.0%})...")
    vectors, table, queries, predicates = _make_bench_world(
        args.n, args.dim, args.queries, args.distinct_predicates, args.seed
    )

    params = AcornParams(m=args.m, gamma=args.gamma, m_beta=2 * args.m,
                         ef_construction=40)
    clock = FakeClock()
    policy = ResiliencePolicy(
        shard_deadline_s=args.deadline,
        max_retries=args.retries,
        backoff_base_s=args.deadline / 10.0,
        breaker_threshold=3,
        breaker_reset_s=100.0 * args.deadline,
        clock=clock,
    )
    with Timer() as t:
        base = ShardedAcornIndex.build(
            vectors, table,
            partitioner=HashPartitioner(args.shards),
            params=params, seed=args.seed, resilience=policy,
        )
    print(f"built {args.shards}-shard ACORN-gamma in {t.elapsed:.1f}s")

    # Seeded permanent-failure plan: half errors, half latency spikes
    # that overshoot the per-shard deadline (charged to the fake
    # clock, so the bench never really sleeps).
    plan = FaultPlan.seeded(
        args.shards, args.failure_rate, seed=args.seed,
        kinds=("error", "latency"), latency_s=4.0 * args.deadline,
    )
    doomed = set(plan.permanently_failing_shards())
    print(f"fault plan: shards {sorted(doomed)} fail permanently "
          f"({[plan.faults[s][0].kind for s in sorted(doomed)]})")

    injector = FaultInjector(plan, clock=clock, seed=args.seed)
    chaos = base.with_faults(injector)

    # Exhaustive per-shard effort in smoke mode makes the survivors-only
    # ground truth exact (each surviving shard returns its true local
    # top-k, so the merge is the survivors' global top-k).
    ef = args.n if args.smoke else args.ef
    # Sequential scatter + one retry per doomed shard bounds each
    # query's clock budget; the gate below asserts it holds.
    per_shard_worst = (
        (args.retries + 1) * 4.0 * args.deadline
        + sum(policy.backoff_s(i) for i in range(args.retries))
    )
    query_budget = args.shards * per_shard_worst + args.deadline

    compiled = [p.compile(table) for p in predicates]
    max_query_clock = 0.0
    gt_matches = True
    accounting_exact = True
    k_when_covered = True
    for query, predicate in zip(queries, compiled):
        before = clock.monotonic()
        result = chaos.search(query, predicate, args.k, ef_search=ef)
        elapsed = clock.monotonic() - before
        max_query_clock = max(max_query_clock, elapsed)

        probed_doomed = sum(
            1 for rec in result.per_shard
            if not rec["pruned"] and rec["shard"] in doomed
        )
        if result.shards_failed + result.shards_timed_out != probed_doomed:
            accounting_exact = False
        survivors = [s for s in range(args.shards) if s not in doomed]
        gids = np.concatenate(
            [base.assignment.global_ids[s] for s in survivors]
        )
        passing = gids[predicate.mask[gids]]
        if passing.shape[0] >= args.k and len(result) < args.k:
            k_when_covered = False
        if args.smoke and passing.shape[0] > 0:
            dists = pairwise_distances(vectors[passing], query,
                                       metric=base.metric)[0]
            order = np.lexsort((passing, dists))[:args.k]
            if not np.array_equal(result.ids, passing[order]):
                gt_matches = False

    within_deadline = max_query_clock <= query_budget

    # Batch-engine pass on a fresh chaos view (fresh breakers and call
    # counters) so the summary aggregates are independent of the
    # per-query loop above.
    chaos_batch = base.with_faults(
        FaultInjector(plan, clock=clock, seed=args.seed)
    )
    batch = QueryBatch.build(queries, compiled, k=args.k, ef_search=ef)
    with SearchEngine(chaos_batch, num_workers=args.workers) as engine:
        outcome = engine.search_batch(batch)
    summary = outcome.summary()

    print(f"\ndegraded queries   : {summary['degraded_queries']} "
          f"/ {len(queries)}")
    print(f"shard failures     : {summary['shards_failed']} failed, "
          f"{summary['shards_timed_out']} timed out")
    print(f"recall ceiling     : min {summary['min_recall_ceiling']:.3f}")
    print(f"query clock budget : max {max_query_clock:.3f}s of "
          f"{query_budget:.3f}s allowed")
    print(f"accounting exact   : {accounting_exact}")
    print(f"survivors-only gt  : "
          f"{gt_matches if args.smoke else 'not checked (use --smoke)'}")
    print(f"breakers           : {chaos_batch.breaker_states()}")

    ceilings = [s.recall_ceiling for s in outcome.stats]
    entry = {
        "bench": "shard-chaos",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": args.n,
        "dim": args.dim,
        "queries": args.queries,
        "k": args.k,
        "ef_search": ef,
        "m": args.m,
        "gamma": args.gamma,
        "n_shards": args.shards,
        "workers": args.workers,
        "smoke": bool(args.smoke),
        "failure_rate": args.failure_rate,
        "faulty_shards": sorted(int(s) for s in doomed),
        "shard_deadline_s": args.deadline,
        "max_retries": args.retries,
        "degraded_queries": int(summary["degraded_queries"]),
        "shards_failed": int(summary["shards_failed"]),
        "shards_timed_out": int(summary["shards_timed_out"]),
        "min_recall_ceiling": round(float(min(ceilings, default=1.0)), 4),
        "mean_recall_ceiling": round(float(np.mean(ceilings)), 4)
        if ceilings else 1.0,
        "ground_truth_matches": bool(gt_matches),
        "within_deadline": bool(within_deadline),
        "max_query_clock_s": round(max_query_clock, 4),
        "query_budget_s": round(query_budget, 4),
        "breaker_states": chaos_batch.breaker_states(),
    }
    validate_chaos_entry(entry)
    out = Path(args.out)
    entries = json.loads(out.read_text()) if out.exists() else []
    entries.append(entry)
    out.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"recorded entry in {out}")

    if args.smoke:
        if not accounting_exact:
            raise SystemExit(
                "smoke check failed: shards_failed + shards_timed_out "
                "did not equal the probed faulty-shard count on every query"
            )
        if not gt_matches:
            raise SystemExit(
                "smoke check failed: degraded top-k diverged from the "
                "survivors-only ground truth"
            )
        if not within_deadline:
            raise SystemExit(
                f"smoke check failed: a query consumed "
                f"{max_query_clock:.3f}s of injected clock, budget "
                f"{query_budget:.3f}s"
            )
        if not k_when_covered:
            raise SystemExit(
                "smoke check failed: a degraded query returned fewer "
                "than k results although survivors held >= k passing rows"
            )
        if summary["degraded_queries"] == 0:
            raise SystemExit(
                "smoke check failed: fault plan injected no degradation "
                "(nothing was exercised)"
            )


def _cmd_bench_build(args: argparse.Namespace) -> None:
    from repro.core.bulkbuild import graph_checksum
    from repro.vectors.distance import GLOBAL_TALLY

    if args.smoke:
        args.n = min(args.n, 1500)
        args.queries = min(args.queries, 24)
    print(f"generating build workload (n={args.n}, dim={args.dim}, "
          f"m={args.m}, gamma={args.gamma}, efc={args.ef_construction})...")
    # Table 4 (TTI) measures raw construction cost, so the workload is
    # deliberately structureless: uniform Gaussian vectors with a
    # uniform label column.  Clustered serving worlds make the
    # sequential baseline converge early and would understate (and
    # noise up) the batching gain being measured.
    from repro.predicates import Equals

    gen = np.random.default_rng(args.seed)
    vectors = gen.standard_normal((args.n, args.dim)).astype(np.float32)
    labels = gen.integers(0, args.distinct_predicates, size=args.n)
    table = AttributeTable(args.n)
    table.add_int_column("label", labels)
    queries = gen.standard_normal((args.queries, args.dim)).astype(np.float32)
    predicates = [
        Equals("label", i % args.distinct_predicates)
        for i in range(args.queries)
    ]
    params = AcornParams(m=args.m, gamma=args.gamma,
                         ef_construction=args.ef_construction)

    tally0 = GLOBAL_TALLY.total
    with Timer() as t_seq:
        sequential = AcornIndex.build(vectors, table, params=params,
                                      seed=args.seed)
    seq_comps = GLOBAL_TALLY.total - tally0
    print(f"sequential build : {t_seq.elapsed:8.2f}s "
          f"({seq_comps} distance comps)")

    tally0 = GLOBAL_TALLY.total
    with Timer() as t_par:
        parallel = AcornIndex.build(vectors, table, params=params,
                                    seed=args.seed, n_workers=args.workers,
                                    wave_cap=args.wave_cap)
    par_comps = GLOBAL_TALLY.total - tally0
    speedup = t_seq.elapsed / t_par.elapsed
    print(f"parallel build   : {t_par.elapsed:8.2f}s at {args.workers} "
          f"workers ({par_comps} distance comps, {speedup:.2f}x)")

    seq_checksum = graph_checksum(sequential.graph)
    par_checksum = graph_checksum(parallel.graph)
    rebuild = AcornIndex.build(vectors, table, params=params,
                               seed=args.seed, n_workers=args.workers,
                               wave_cap=args.wave_cap)
    rebuild_match = graph_checksum(rebuild.graph) == par_checksum
    print(f"parallel rebuild : checksum match = {rebuild_match}")

    try:
        sequential.graph.validate()
        parallel.graph.validate()
        graphs_valid = True
    except ValueError as exc:
        print(f"graph validation failed: {exc}")
        graphs_valid = False

    # Recall@10 of both graphs against the brute-force hybrid ground
    # truth (distance ranking restricted to each predicate's rows).
    k = args.k
    hits = {"seq": 0, "par": 0}
    total = 0
    for query, predicate in zip(queries, predicates):
        passing = predicate.compile(table).passing_ids
        if passing.size < k:
            continue
        dists = np.linalg.norm(
            vectors[passing].astype(np.float64) - query.astype(np.float64),
            axis=1,
        )
        truth = set(passing[np.argsort(dists, kind="stable")[:k]].tolist())
        total += k
        for key, index in (("seq", sequential), ("par", parallel)):
            found = index.search(query, predicate, k=k,
                                 ef_search=args.ef).ids
            hits[key] += len(truth & set(found.tolist()))
    recall_seq = hits["seq"] / total if total else 1.0
    recall_par = hits["par"] / total if total else 1.0
    recall_gap = abs(recall_seq - recall_par)
    print(f"recall@{k}        : sequential {recall_seq:.4f}, "
          f"parallel {recall_par:.4f} (gap {recall_gap:.4f})")

    entry = {
        "bench": "build-tti",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": args.n,
        "dim": args.dim,
        "m": args.m,
        "gamma": args.gamma,
        "ef_construction": args.ef_construction,
        "n_workers": args.workers,
        "wave_cap": args.wave_cap,
        "smoke": bool(args.smoke),
        "sequential_s": round(t_seq.elapsed, 3),
        "parallel_s": round(t_par.elapsed, 3),
        "speedup": round(speedup, 3),
        "sequential_distance_comps": int(seq_comps),
        "parallel_distance_comps": int(par_comps),
        "sequential_checksum": seq_checksum,
        "parallel_checksum": par_checksum,
        "parallel_rebuild_checksum_match": bool(rebuild_match),
        "recall_at_10_sequential": round(recall_seq, 4),
        "recall_at_10_parallel": round(recall_par, 4),
        "recall_gap": round(abs(round(recall_seq, 4) - round(recall_par, 4)),
                            4),
        "graphs_valid": graphs_valid,
    }
    validate_build_entry(entry)
    out = Path(args.out)
    entries = json.loads(out.read_text()) if out.exists() else []
    entries.append(entry)
    out.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"recorded entry in {out}")

    if args.smoke:
        if not graphs_valid:
            raise SystemExit(
                "smoke check failed: a built graph failed validation"
            )
        if not rebuild_match:
            raise SystemExit(
                "smoke check failed: two parallel builds with the same "
                "seed produced different graphs (determinism broken)"
            )
        if recall_gap > 0.01:
            raise SystemExit(
                f"smoke check failed: parallel-build recall diverged from "
                f"sequential by {recall_gap:.4f} (> 0.01)"
            )


def _make_route_world(n: int, dim: int, n_queries: int, seed: int):
    """Correlated / anti-correlated routing workload.

    Clustered vectors carry an int ``label`` column equal to their
    cluster, and the query stream cycles four classes:

    0. correlated ``Equals`` — query near cluster c, predicate
       ``label == c`` (selective, s ≈ 1/16 < 1/γ);
    1. anti-correlated ``Equals`` — query near c, predicate matches the
       opposite cluster;
    2. correlated broad ``OneOf`` over 8 labels including c
       (s ≈ 0.5 ≥ 1/γ — the graph's home turf);
    3. anti-correlated ``OneOf`` over 3 labels far from c
       (s ≈ 0.19 ≥ 1/γ, so the static rule walks the graph into the
       wrong clusters — the class adaptive routing should rescue).
    """
    from repro.predicates import Equals, OneOf

    n_clusters = 16
    gen = np.random.default_rng(seed)
    centers = gen.standard_normal((n_clusters, dim)).astype(np.float32)
    assign = gen.integers(0, n_clusters, size=n)
    vectors = (centers[assign]
               + 0.35 * gen.standard_normal((n, dim))).astype(np.float32)
    table = AttributeTable(n)
    table.add_int_column("label", assign)
    queries = np.empty((n_queries, dim), dtype=np.float32)
    predicates = []
    for i in range(n_queries):
        c = int(gen.integers(0, n_clusters))
        queries[i] = centers[c] + 0.35 * gen.standard_normal(dim)
        cls = i % 4
        if cls == 0:
            predicates.append(Equals("label", c))
        elif cls == 1:
            predicates.append(
                Equals("label", (c + n_clusters // 2) % n_clusters)
            )
        elif cls == 2:
            predicates.append(OneOf(
                "label",
                tuple(sorted((c + j) % n_clusters for j in range(8))),
            ))
        else:
            predicates.append(OneOf(
                "label",
                tuple(sorted((c + j) % n_clusters for j in (5, 9, 13))),
            ))
    return vectors, table, queries, predicates


def _cmd_bench_route(args: argparse.Namespace) -> None:
    from repro.eval.metrics import recall_at_k
    from repro.predicates.selectivity import SamplingSelectivityEstimator
    from repro.routing import RoutePlanner

    if args.smoke:
        args.n = min(args.n, 1500)
        args.queries = min(args.queries, 32)
    print(f"generating routing workload (n={args.n}, dim={args.dim}, "
          f"queries={args.queries}, correlated/anti-correlated classes)...")
    vectors, table, queries, predicates = _make_route_world(
        args.n, args.dim, args.queries, args.seed
    )
    params = AcornParams(m=args.m, gamma=args.gamma, m_beta=2 * args.m,
                         ef_construction=40)
    with Timer() as t:
        index = AcornIndex.build(vectors, table, params=params,
                                 seed=args.seed)
    print(f"built ACORN-gamma (m={args.m}, gamma={args.gamma}, "
          f"s_min={index.params.s_min:.4f}) in {t.elapsed:.1f}s")
    index.freeze()

    # Exact ground truth: brute force over each predicate's passing set
    # (what the pre-filter baseline computes by construction).
    pre = PreFilterSearcher(vectors, table)
    ground_truth = [
        pre.search(q, p.compile(table), args.k).ids
        for q, p in zip(queries, predicates)
    ]

    def make_estimator():
        if args.estimator == "sampling":
            return SamplingSelectivityEstimator(
                table, sample_size=args.sample_size, seed=args.seed
            )
        return None  # planner default: exact

    def run_policy(policy: str):
        planner = RoutePlanner(index, estimator=make_estimator(),
                               policy=policy)
        batch = QueryBatch.build(queries, predicates, k=args.k,
                                 ef_search=args.ef)
        with SearchEngine(planner, num_workers=args.workers) as engine:
            with Timer() as t:
                outcome = engine.search_batch(batch)
        recall = float(np.mean([
            recall_at_k(res.ids, gt, args.k)
            for res, gt in zip(outcome.results, ground_truth)
        ]))
        return planner, outcome, len(queries) / t.elapsed, recall

    results = {}
    adaptive_decisions = None
    for policy in ("static", "adaptive"):
        _planner, outcome, qps, recall = run_policy(policy)
        if policy == "adaptive":
            adaptive_decisions = [s.route_chosen for s in outcome.stats]
        latency = percentile_summary(s.wall_time_s for s in outcome.stats)
        results[policy] = {
            "qps": round(qps, 2),
            "recall_at_k": round(recall, 6),
            "mean_distance_computations": round(float(np.mean(
                [s.distance_computations for s in outcome.stats]
            )), 2),
            "route_counts": outcome.route_counts,
            "fallbacks_triggered": int(outcome.fallbacks_triggered),
            "mean_abs_estimator_error": round(
                outcome.mean_abs_estimator_error, 6
            ),
            "latency_s": dataclasses.asdict(latency),
        }
        routes = ", ".join(f"{r}={c}"
                           for r, c in outcome.route_counts.items())
        print(f"{policy:8s}: {qps:8.1f} qps  recall@{args.k} {recall:.4f}  "
              f"dc/query {results[policy]['mean_distance_computations']:.0f}"
              f"  [{routes}]  fallbacks={outcome.fallbacks_triggered}")

    # Determinism gate: a fresh adaptive planner on the same workload
    # must make the same route decisions (routing costs are counted in
    # distance computations, never wall time).
    _, rerun_outcome, _, _ = run_policy("adaptive")
    rerun_decisions = [s.route_chosen for s in rerun_outcome.stats]
    if rerun_decisions != adaptive_decisions:
        raise SystemExit(
            "adaptive route decisions changed between identical runs — "
            "routing is reading non-deterministic state"
        )
    print("determinism       : adaptive route decisions identical "
          "across two runs")

    static, adaptive = results["static"], results["adaptive"]
    qps_speedup = adaptive["qps"] / max(static["qps"], 1e-9)
    dc_speedup = (static["mean_distance_computations"]
                  / max(adaptive["mean_distance_computations"], 1e-9))
    recall_delta = adaptive["recall_at_k"] - static["recall_at_k"]
    print(f"\nadaptive vs static : {qps_speedup:.2f}x qps, "
          f"{dc_speedup:.2f}x distance computations, "
          f"recall delta {recall_delta:+.4f}")

    entry = {
        "bench": "route",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": args.n,
        "dim": args.dim,
        "queries": args.queries,
        "k": args.k,
        "ef_search": args.ef,
        "m": args.m,
        "gamma": args.gamma,
        "workers": args.workers,
        "smoke": bool(args.smoke),
        "s_min": round(index.params.s_min, 6),
        "policies": results,
        "adaptive_qps_speedup": round(qps_speedup, 3),
        "adaptive_dc_speedup": round(dc_speedup, 3),
        "recall_delta": round(recall_delta, 6),
    }
    validate_route_entry(entry)
    out = Path(args.out)
    entries = json.loads(out.read_text()) if out.exists() else []
    entries.append(entry)
    out.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"recorded entry in {out}")

    if args.smoke:
        if recall_delta < -0.01:
            raise SystemExit(
                f"smoke check failed: adaptive routing lost recall "
                f"({recall_delta:+.4f} vs static)"
            )
        if len(results["adaptive"]["route_counts"]) < 1:
            raise SystemExit(
                "smoke check failed: adaptive run recorded no routes"
            )


def _cmd_bench_quant(args: argparse.Namespace) -> None:
    from repro.eval.metrics import recall_at_k

    if args.smoke:
        args.n = min(args.n, 1500)
        args.queries = min(args.queries, 32)
    print(f"generating quantization workload (n={args.n}, dim={args.dim}, "
          f"queries={args.queries})...")
    vectors, table, queries, predicates = _make_bench_world(
        args.n, args.dim, args.queries, args.distinct_predicates, args.seed
    )
    params = AcornParams(m=args.m, gamma=args.gamma, m_beta=2 * args.m,
                         ef_construction=40)
    with Timer() as t:
        index = AcornIndex.build(vectors, table, params=params,
                                 seed=args.seed)
    print(f"built ACORN-gamma (m={args.m}, gamma={args.gamma}) "
          f"in {t.elapsed:.1f}s")
    index.freeze()

    pre = PreFilterSearcher(vectors, table)
    # Predicates are compiled once and shared by both arms and the
    # ground truth, mirroring SweepRunner's protocol (§7.2: baselines
    # amortize filter bitmaps) — the arms then differ only in distance
    # arithmetic.
    compiled = [p.compile(table) for p in predicates]
    ground_truth = [
        pre.search(q, c, args.k).ids for q, c in zip(queries, compiled)
    ]

    def summarize(elapsed, results):
        recall = float(np.mean([
            recall_at_k(res.ids, gt, args.k)
            for res, gt in zip(results, ground_truth)
        ]))
        return {
            "qps": round(len(queries) / elapsed, 2),
            "recall_at_k": round(recall, 6),
            "mean_distance_computations": round(float(np.mean(
                [r.distance_computations for r in results]
            )), 2),
            "mean_quantized_distances": round(float(np.mean(
                [getattr(r, "quantized_distances", 0) for r in results]
            )), 2),
            "mean_rerank_distances": round(float(np.mean(
                [getattr(r, "rerank_distances", 0) for r in results]
            )), 2),
            "latency_s": round(elapsed / len(queries), 6),
        }

    def run_float_arm():
        """Engine pass on the per-query float32 path (after an untimed
        warmup so both arms measure steady state)."""
        batch = QueryBatch.build(queries, compiled, k=args.k,
                                 ef_search=args.ef)
        with SearchEngine(index, num_workers=args.workers) as engine:
            engine.search_batch(batch)
            with Timer() as t:
                outcome = engine.search_batch(batch)
        return summarize(t.elapsed, outcome.results)

    def run_quant_arm():
        """Lockstep batch pass on the quantized hot path (untimed
        warmup populates the per-predicate CSR cache first)."""
        index.search_batch_quantized(queries, compiled, args.k,
                                     ef_search=args.ef, beam=args.beam)
        with Timer() as t:
            results = index.search_batch_quantized(
                queries, compiled, args.k,
                ef_search=args.ef, beam=args.beam,
            )
        return results, summarize(t.elapsed, results)

    # Arm 1: the float32 baseline — same graph, same workload.
    float_metrics = run_float_arm()
    print(f"float32  : {float_metrics['qps']:8.1f} qps  "
          f"recall@{args.k} {float_metrics['recall_at_k']:.4f}  "
          f"dc/query {float_metrics['mean_distance_computations']:.0f}")

    # Arm 2: the lockstep quantized hot path over the very same graph.
    index.enable_quantization({
        "kind": args.quantization, "rerank_factor": args.rerank_factor,
    })
    quant_results, quant_metrics = run_quant_arm()
    print(f"{args.quantization:9s}: {quant_metrics['qps']:8.1f} qps  "
          f"recall@{args.k} {quant_metrics['recall_at_k']:.4f}  "
          f"dc/query {quant_metrics['mean_distance_computations']:.0f}  "
          f"qd/query {quant_metrics['mean_quantized_distances']:.0f}  "
          f"rerank/query {quant_metrics['mean_rerank_distances']:.0f}")

    # Determinism gate: the quantized path must return identical ids and
    # identical counters on a second pass over the same frozen index.
    rerun_results, _ = run_quant_arm()
    deterministic = all(
        np.array_equal(a.ids, b.ids)
        and a.quantized_distances == b.quantized_distances
        for a, b in zip(quant_results, rerun_results)
    )
    if not deterministic:
        raise SystemExit(
            "quantized results changed between identical runs — the "
            "beam kernel is reading non-deterministic state"
        )
    print("determinism : quantized ids and counters identical across "
          "two runs")

    speedup = quant_metrics["qps"] / max(float_metrics["qps"], 1e-9)
    recall_ok = quant_metrics["recall_at_k"] >= args.recall_floor
    print(f"\nquantized vs float32 : {speedup:.2f}x batch qps, "
          f"recall floor {args.recall_floor:.2f} "
          f"{'met' if recall_ok else 'MISSED'}")

    entry = {
        "bench": "quant",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": args.n,
        "dim": args.dim,
        "queries": args.queries,
        "k": args.k,
        "ef_search": args.ef,
        "m": args.m,
        "gamma": args.gamma,
        "workers": args.workers,
        "beam": args.beam,
        "smoke": bool(args.smoke),
        "quantization": args.quantization,
        "rerank_factor": float(args.rerank_factor),
        "float32": float_metrics,
        "quantized": quant_metrics,
        "batch_qps_speedup": round(speedup, 3),
        "recall_floor": float(args.recall_floor),
        "recall_ok": bool(recall_ok),
        "deterministic": bool(deterministic),
    }
    validate_quant_entry(entry)
    out = Path(args.out)
    entries = json.loads(out.read_text()) if out.exists() else []
    entries.append(entry)
    out.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"recorded entry in {out}")

    if not recall_ok:
        raise SystemExit(
            f"check failed: quantized recall@{args.k} "
            f"{quant_metrics['recall_at_k']:.4f} below floor "
            f"{args.recall_floor:.2f}"
        )
    if not args.smoke and speedup <= 2.0:
        raise SystemExit(
            f"check failed: quantized batch QPS speedup {speedup:.2f}x "
            "did not exceed the 2x target (smoke runs skip this gate)"
        )


def _cmd_bench_serving(args: argparse.Namespace) -> None:
    import asyncio

    from repro.serving import (
        AcornService,
        ArrivalSchedule,
        ServingConfig,
        TenantQuota,
        generate_arrivals,
        replay,
        replay_realtime,
        summarize_load,
    )
    from repro.utils.clock import FakeClock

    if args.smoke:
        args.n = min(args.n, 1500)
        args.duration = min(args.duration, 0.4)

    print(f"generating serving workload (n={args.n}, dim={args.dim}, "
          f"query pool={args.pool}, {args.distinct_predicates} distinct "
          "regex predicates)...")
    vectors, table, queries, predicates = _make_bench_world(
        args.n, args.dim, args.pool, args.distinct_predicates, args.seed
    )
    params = AcornParams(m=args.m, gamma=args.gamma, m_beta=2 * args.m,
                         ef_construction=40)
    with Timer() as t:
        index = AcornIndex.build(vectors, table, params=params,
                                 seed=args.seed)
    print(f"built ACORN-gamma (m={args.m}, gamma={args.gamma}) "
          f"in {t.elapsed:.1f}s")
    index.freeze()

    def make_config() -> ServingConfig:
        return ServingConfig(
            k=args.k, ef_search=args.ef, max_batch=args.max_batch,
            latency_budget_ms=args.latency_budget_ms,
            max_pending=args.max_pending,
            default_quota=TenantQuota(
                rate_qps=args.tenant_rate, burst=args.tenant_burst,
            ),
            engine_workers=args.workers,
        )

    flash_start = args.duration * 0.4
    schedules = {
        "poisson": ArrivalSchedule.poisson(
            rate_qps=args.rate, duration_s=args.duration,
            n_tenants=args.tenants, query_pool=len(queries),
            seed=args.seed,
        ),
        "flash": ArrivalSchedule.flash_crowd(
            rate_qps=args.rate, duration_s=args.duration,
            flash_start_s=flash_start,
            flash_duration_s=args.duration * 0.3,
            flash_multiplier=args.flash_multiplier,
            n_tenants=args.tenants, query_pool=len(queries),
            seed=args.seed + 1,
        ),
    }

    def virtual_run(arrivals):
        """One FakeClock replay: admission log + accounting summary."""
        service = AcornService(index, make_config(), clock=FakeClock())
        responses = asyncio.run(replay(service, arrivals, queries, predicates))
        summary = summarize_load(arrivals, responses)
        return list(service.admission_log), summary

    def realtime_run(arrivals):
        """One wall-clock replay: goodput + tail latency under load."""
        async def go():
            service = AcornService(index, make_config())
            start = time.perf_counter()
            responses = await replay_realtime(
                service, arrivals, queries, predicates
            )
            wall = time.perf_counter() - start
            await service.aclose()
            return responses, wall

        responses, wall = asyncio.run(go())
        summary = summarize_load(arrivals, responses, wall_s=wall)
        latency = summary["latency_ms"]
        return {
            "wall_s": round(wall, 4),
            "goodput_qps": (
                round(summary["goodput_qps"], 2)
                if summary["goodput_qps"] is not None else None
            ),
            "served": summary["ok"] + summary["degraded"],
            "rejected": summary["rejected"],
            "p50_latency_ms": (
                round(latency["p50"], 3)
                if latency["p50"] is not None else None
            ),
            "p99_latency_ms": (
                round(latency["p99"], 3)
                if latency["p99"] is not None else None
            ),
        }

    deterministic = True
    schedule_entries = {}
    for name, schedule in schedules.items():
        arrivals = generate_arrivals(schedule)
        # Determinism gate: two virtual replays of the same trace must
        # make identical admission decisions and identical summaries.
        log_a, virtual_a = virtual_run(arrivals)
        log_b, virtual_b = virtual_run(arrivals)
        schedule_ok = log_a == log_b and virtual_a == virtual_b
        deterministic = deterministic and schedule_ok
        realtime = realtime_run(arrivals)
        print(f"\n{name:8s}: {len(arrivals)} arrivals over "
              f"{args.duration:.1f}s ({args.rate:.0f} qps base)")
        print(f"  virtual : ok {virtual_a['ok']}  degraded "
              f"{virtual_a['degraded']}  rejected {virtual_a['rejected']} "
              f"(shed {virtual_a['shed_fraction']:.1%})  "
              f"mean batch {virtual_a['mean_batch_size']:.2f}  "
              f"deterministic {'yes' if schedule_ok else 'NO'}")
        p50 = realtime["p50_latency_ms"]
        p99 = realtime["p99_latency_ms"]
        goodput = realtime["goodput_qps"]
        print(f"  realtime: goodput "
              f"{goodput if goodput is not None else 'n/a'} qps  "
              f"p50/p99 "
              f"{p50 if p50 is not None else 'n/a'}/"
              f"{p99 if p99 is not None else 'n/a'} ms  "
              f"rejected {realtime['rejected']}")
        schedule_entries[name] = {**virtual_a, "realtime": realtime}

    entry = {
        "bench": "serving",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": args.n,
        "dim": args.dim,
        "k": args.k,
        "ef_search": args.ef,
        "m": args.m,
        "gamma": args.gamma,
        "engine_workers": args.workers,
        "smoke": bool(args.smoke),
        "max_batch": args.max_batch,
        "latency_budget_ms": float(args.latency_budget_ms),
        "max_pending": args.max_pending,
        "n_tenants": args.tenants,
        "tenant_rate_qps": float(args.tenant_rate),
        "tenant_burst": float(args.tenant_burst),
        "rate_qps": float(args.rate),
        "duration_s": float(args.duration),
        "schedules": schedule_entries,
        "deterministic": bool(deterministic),
    }
    validate_serving_entry(entry)
    out = Path(args.out)
    entries = json.loads(out.read_text()) if out.exists() else []
    entries.append(entry)
    out.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"\nrecorded entry in {out}")

    if not deterministic:
        raise SystemExit(
            "check failed: virtual replays of the same trace diverged — "
            "admission or batching is reading non-deterministic state"
        )
    if schedule_entries["flash"]["rejected"] == 0:
        raise SystemExit(
            "check failed: the flash-crowd schedule shed nothing — the "
            "admission path was not exercised (raise --rate or "
            "--flash-multiplier, or lower --tenant-rate)"
        )
    if schedule_entries["poisson"]["ok"] == 0:
        raise SystemExit(
            "check failed: the steady Poisson schedule served nothing"
        )


def _cmd_bench_lifecycle(args: argparse.Namespace) -> None:
    import threading

    from repro.eval.metrics import recall_at_k
    from repro.lifecycle import (
        BackgroundCompactor,
        LifecycleConfig,
        LifecycleIndex,
    )
    from repro.utils.clock import FakeClock

    if args.smoke:
        args.n = min(args.n, 1200)
        args.ops = min(args.ops, 240)
        args.reads = min(args.reads, 48)

    print(f"generating lifecycle workload (n={args.n}, dim={args.dim}, "
          f"ops={args.ops}, reads={args.reads})...")
    vectors, table, queries, predicates = _make_bench_world(
        args.n, args.dim, max(args.reads, 1), args.distinct_predicates,
        args.seed,
    )
    params = AcornParams(m=args.m, gamma=args.gamma, m_beta=2 * args.m,
                         ef_construction=40)
    config = LifecycleConfig(
        build_seed=args.seed,
        compact_min_delta=max(16, args.ops // 8),
        compact_delta_fraction=0.02,
        compact_tombstone_fraction=0.05,
    )

    # One seeded op tape shared by every run below — the determinism
    # gate depends on each run replaying the identical mutations.
    gen = np.random.default_rng(args.seed + 17)
    ops = []
    next_id = args.n
    for _ in range(args.ops):
        if gen.random() < args.delete_fraction and next_id > 1:
            ops.append(("delete", int(gen.integers(0, next_id))))
        else:
            vec = gen.standard_normal(args.dim).astype(np.float32)
            caption = " ".join(gen.choice(_BENCH_VOCAB, size=8,
                                          replace=False))
            ops.append(("insert", vec, caption))
            next_id += 1
    n_inserts = sum(1 for op in ops if op[0] == "insert")

    def build_lifecycle(clock=None):
        return LifecycleIndex.build(
            vectors, table, params=params, seed=args.seed,
            config=config, clock=clock,
        )

    def replay_virtual():
        """Deterministic arm: FakeClock, reads interleaved on the tape."""
        clock = FakeClock()
        lc = build_lifecycle(clock)
        compactor = BackgroundCompactor(lc, interval_s=0.5, clock=clock)
        trace = []
        read_every = max(1, args.ops // max(args.reads, 1))
        reads_done = 0
        for i, op in enumerate(ops):
            if op[0] == "insert":
                lc.insert(op[1], {"caption": op[2]})
            else:
                lc.delete(op[1])
            clock.advance(0.05)
            compactor.tick()
            if i % read_every == 0 and reads_done < args.reads:
                snap = lc.acquire_read_snapshot()
                try:
                    res = snap.search(
                        queries[reads_done], predicates[reads_done],
                        args.k, ef_search=args.ef,
                    )
                finally:
                    lc.release_read_snapshot(snap)
                trace.append((i, res.epoch, tuple(res.ids.tolist())))
                reads_done += 1
        return lc, compactor, trace

    # Determinism gate: two full virtual replays of the same tape must
    # agree on every read's ids, every read's epoch, and the final
    # lifecycle state.
    lc_a, compactor_a, trace_a = replay_virtual()
    lc_b, _, trace_b = replay_virtual()
    deterministic = (
        trace_a == trace_b
        and lc_a.current_epoch == lc_b.current_epoch
        and np.array_equal(lc_a.live_ids(), lc_b.live_ids())
    )
    determinism = "pass" if deterministic else "fail"
    print(f"determinism : double virtual replay "
          f"({len(trace_a)} reads, {compactor_a.compactions} "
          f"compactions) -> {determinism}")
    if not deterministic:
        raise SystemExit(
            "lifecycle replay diverged between two identical seeded "
            "runs — the epoch pipeline is reading non-deterministic "
            "state"
        )

    # Timed arm: a real writer thread streams the same tape (ticking
    # the compactor as it goes) while this thread reads open-loop.
    # Reads must never fail and never block on the writer.
    lc = build_lifecycle()
    compactor = BackgroundCompactor(lc, interval_s=0.0)
    writer_done = threading.Event()
    writer_errors: list[BaseException] = []

    def write_stream():
        try:
            for op in ops:
                if op[0] == "insert":
                    lc.insert(op[1], {"caption": op[2]})
                else:
                    lc.delete(op[1])
                compactor.tick()
        except BaseException as exc:  # noqa: BLE001 — reported below
            writer_errors.append(exc)
        finally:
            writer_done.set()

    reads = 0
    failed_during_compaction = 0
    blocked_reads = 0
    recalls = []
    writer = threading.Thread(target=write_stream, name="lifecycle-writer")
    with Timer() as t:
        writer.start()
        while not writer_done.is_set() or reads == 0:
            q = queries[reads % len(queries)]
            pred = predicates[reads % len(predicates)]
            t_acquire = time.perf_counter()
            try:
                snap = lc.acquire_read_snapshot()
            except Exception:
                failed_during_compaction += 1
                reads += 1
                continue
            if time.perf_counter() - t_acquire > 0.25:
                blocked_reads += 1
            try:
                res = snap.search(q, pred, args.k, ef_search=args.ef)
                truth = snap.exact_search(q, pred, args.k)
            except Exception:
                failed_during_compaction += 1
                reads += 1
                continue
            finally:
                lc.release_read_snapshot(snap)
            if len(truth.ids):
                recalls.append(recall_at_k(res.ids, truth.ids, args.k))
            reads += 1
        writer.join()
    if writer_errors:
        raise SystemExit(f"writer thread failed: {writer_errors[0]!r}")

    read_qps = reads / max(t.elapsed, 1e-9)
    recall = float(np.mean(recalls)) if recalls else 1.0
    print(f"concurrent  : {reads} reads at {read_qps:.1f} qps, "
          f"recall@{args.k} {recall:.4f}, {compactor.compactions} "
          f"compactions, epoch {lc.current_epoch}, "
          f"{failed_during_compaction} failed / {blocked_reads} blocked")
    if compactor.compactions < 1:
        # The concurrent guarantee is vacuous if nothing compacted;
        # force one so every bench run exercises reads-across-epochs.
        lc.compact(seed=args.seed)
        compactor.compactions += 1
        print("forced one compaction (tape never crossed the policy "
              "thresholds)")

    entry = {
        "bench": "lifecycle",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": args.n,
        "dim": args.dim,
        "k": args.k,
        "ef_search": args.ef,
        "m": args.m,
        "gamma": args.gamma,
        "smoke": bool(args.smoke),
        "seed": args.seed,
        "n_ops": len(ops),
        "insert_fraction": round(n_inserts / max(len(ops), 1), 4),
        "delete_fraction": round(1.0 - n_inserts / max(len(ops), 1), 4),
        "reads": reads,
        "read_qps": round(read_qps, 2),
        "recall_at_k": round(recall, 6),
        "failed_reads_during_compaction": failed_during_compaction,
        "blocked_reads": blocked_reads,
        "epochs_published": int(lc.current_epoch),
        "compactions": int(compactor.compactions),
        "compactor_crashes": int(compactor.crashes),
        "writes_applied": len(ops),
        "writes_rejected": 0,
        "final_live": int(lc.live_ids().shape[0]),
        "final_delta": int(lc.delta_size()),
        "tombstones_remaining": int(lc.tombstone_count()),
        "determinism": determinism,
    }
    validate_lifecycle_entry(entry)
    out = Path(args.out)
    entries = json.loads(out.read_text()) if out.exists() else []
    entries.append(entry)
    out.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"recorded entry in {out}")

    if args.smoke and recall < args.recall_floor:
        raise SystemExit(
            f"check failed: concurrent recall@{args.k} {recall:.4f} "
            f"below floor {args.recall_floor:.2f}"
        )


def _cmd_bench_parallel(args: argparse.Namespace) -> None:
    import os

    from repro.parallel import (
        COPY_FIXUPS,
        parallel_available,
        reset_fixup_counters,
    )

    if args.smoke:
        args.n = min(args.n, 1500)
        args.queries = min(args.queries, 32)
        args.workers = "1,2"

    worker_counts = sorted({int(w) for w in args.workers.split(",")})
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:
        cpus = os.cpu_count() or 1

    if not parallel_available():
        # CI containers without /dev/shm: report and exit clean so the
        # smoke job can skip gracefully instead of failing.
        print("shared memory unavailable on this host; "
              "bench-parallel skipped")
        return

    print(f"generating parallel workload (n={args.n}, dim={args.dim}, "
          f"queries={args.queries}, {args.distinct_predicates} distinct "
          f"regex predicates, {cpus} cpus)...")
    vectors, table, queries, predicates = _make_bench_world(
        args.n, args.dim, args.queries, args.distinct_predicates, args.seed
    )
    params = AcornParams(m=args.m, gamma=args.gamma, m_beta=2 * args.m,
                         ef_construction=40)
    with Timer() as t:
        index = AcornIndex.build(vectors, table, params=params,
                                 seed=args.seed)
    print(f"built ACORN-gamma (m={args.m}, gamma={args.gamma}) "
          f"in {t.elapsed:.1f}s")
    index.freeze()
    reset_fixup_counters()

    batch = QueryBatch.build(queries, predicates, k=args.k,
                             ef_search=args.ef)

    def result_key(outcome):
        return [
            (r.ids.tobytes(), r.distances.tobytes(),
             r.distance_computations, s.hops, s.visited_nodes)
            for r, s in zip(outcome.results, outcome.stats)
        ]

    with SearchEngine(index, num_workers=1, executor="sync") as engine:
        engine.search_batch(batch)  # warm the predicate cache
        with Timer() as t:
            sync_outcome = engine.search_batch(batch)
        sync_qps = len(queries) / t.elapsed
    sync_key = result_key(sync_outcome)
    print(f"\nsync baseline       : {sync_qps:10.1f} qps")

    thread_qps = {}
    for workers in worker_counts:
        with SearchEngine(index, num_workers=workers,
                          executor="thread") as engine:
            engine.search_batch(batch)  # warm the pool
            with Timer() as t:
                outcome = engine.search_batch(batch)
            thread_qps[workers] = len(queries) / t.elapsed
        if result_key(outcome) != sync_key:
            raise SystemExit(
                f"thread executor at {workers} workers diverged from sync"
            )
        print(f"thread, {workers:2d} worker(s) : "
              f"{thread_qps[workers]:10.1f} qps")

    process_qps = {}
    results_identical = True
    deterministic = True
    zero_copy = False
    arena_nbytes = 0
    pool_stats = {"spawns": 0, "deaths": 0}
    for workers in worker_counts:
        with SearchEngine(index, num_workers=workers,
                          executor="process") as engine:
            engine.search_batch(batch)  # warm spawn + arena pins
            with Timer() as t:
                outcome_a = engine.search_batch(batch)
            process_qps[workers] = len(queries) / t.elapsed
            outcome_b = engine.search_batch(batch)
            if engine.process_fallbacks:
                raise SystemExit(
                    "process executor fell back to threads: "
                    f"{engine.last_fallback_reason}"
                )
            key_a = result_key(outcome_a)
            results_identical &= key_a == sync_key
            deterministic &= key_a == result_key(outcome_b)
            if workers == worker_counts[-1]:
                # Zero-copy evidence from inside a worker: its hot
                # arrays must alias the mapped arena buffer.
                record = engine._arena_manager.current
                report = engine._proc_pool.call(
                    0, "introspect", {"token": record.token},
                    pin=(record.token,
                         {"manifest": record.arena.manifest(),
                          "spec": record.spec}),
                )
                zero_copy = bool(report["vectors_shared"]
                                 and report["csr_shared"]
                                 and not report["vectors_writeable"])
                arena_nbytes = int(report["arena_nbytes"])
                pool_stats = {
                    key: engine._proc_pool.stats()[key]
                    for key in ("spawns", "deaths")
                }
        ratio = process_qps[workers] / thread_qps[workers]
        print(f"process, {workers:2d} worker(s): "
              f"{process_qps[workers]:10.1f} qps ({ratio:.2f}x thread)")

    ratios = {w: process_qps[w] / thread_qps[w] for w in worker_counts}
    at4 = ratios.get(4, max(ratios.values()))
    fixup_copies = int(sum(COPY_FIXUPS.values()))
    gate_enforced = bool(cpus >= 4 and 4 in worker_counts
                         and not args.smoke)
    print(f"\nbyte-identical to sync : {results_identical}")
    print(f"double-run determinism : {deterministic}")
    print(f"zero-copy (in-worker)  : {zero_copy} "
          f"({arena_nbytes / 1e6:.1f} MB arena, "
          f"{fixup_copies} fixup copies)")
    gate_label = ("enforced" if gate_enforced
                  else f"recorded only — {cpus} cpu(s)")
    print(f"process/thread at 4    : {at4:.2f}x ({gate_label})")

    entry = {
        "bench": "parallel",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": args.n,
        "dim": args.dim,
        "queries": args.queries,
        "k": args.k,
        "ef_search": args.ef,
        "m": args.m,
        "gamma": args.gamma,
        "smoke": bool(args.smoke),
        "cpus": int(cpus),
        "index": "acorn-gamma",
        "sync_qps": round(sync_qps, 2),
        "thread_qps_by_workers": {
            str(w): round(q, 2) for w, q in thread_qps.items()
        },
        "process_qps_by_workers": {
            str(w): round(q, 2) for w, q in process_qps.items()
        },
        "process_vs_thread_at_4": round(at4, 3),
        "best_process_vs_thread": round(max(ratios.values()), 3),
        "results_identical": bool(results_identical),
        "deterministic": bool(deterministic),
        "zero_copy": bool(zero_copy),
        "arena_nbytes": arena_nbytes,
        "fixup_copies": fixup_copies,
        "pool": pool_stats,
        "gate_enforced": gate_enforced,
    }
    validate_parallel_entry(entry)
    out = Path(args.out)
    entries = json.loads(out.read_text()) if out.exists() else []
    entries.append(entry)
    out.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"recorded entry in {out}")


# bench-report: headline metrics pulled per bench kind, in the order
# they should appear in the table.  Keys absent from an entry are
# skipped, so older records with narrower schemas still render.
_REPORT_HEADLINES = {
    "engine-batch": ("engine_qps", "speedup_vs_sequential"),
    "traversal-kernel": ("batch_qps_speedup", "hops_per_s_speedup"),
    "shard-scatter-gather": ("sharded_qps", "qps_ratio", "prune_fraction"),
    "shard-chaos": ("degraded_queries", "min_recall_ceiling"),
    "build-tti": ("speedup", "recall_gap"),
    "route": ("adaptive_qps_speedup", "adaptive_dc_speedup",
              "recall_delta"),
    "quant": ("batch_qps_speedup", "quantization"),
    "serving": ("rate_qps", "deterministic"),
    "lifecycle": ("read_qps", "recall_at_k", "compactions"),
    "parallel": ("process_vs_thread_at_4", "best_process_vs_thread",
                 "cpus", "zero_copy"),
}


def _report_rows(bench_dir: Path) -> list[dict]:
    """One row per recorded bench entry across every BENCH_*.json."""
    rows = []
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        try:
            entries = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping {path.name}: {exc}")
            continue
        if not isinstance(entries, list):
            print(f"skipping {path.name}: not a JSON array")
            continue
        for run, entry in enumerate(entries):
            bench = str(entry.get("bench", path.stem))
            headline_keys = _REPORT_HEADLINES.get(bench, ())
            headline = "  ".join(
                f"{key}={entry[key]}" for key in headline_keys
                if key in entry
            )
            rows.append({
                "file": path.name,
                "bench": bench,
                "run": run + 1,
                "timestamp": str(entry.get("timestamp", "")),
                "n": entry.get("n", ""),
                "queries": entry.get("queries", ""),
                "smoke": entry.get("smoke", False),
                "headline": headline,
            })
    return rows


def _cmd_bench_report(args: argparse.Namespace) -> None:
    bench_dir = Path(args.dir)
    rows = _report_rows(bench_dir)
    if not rows:
        raise SystemExit(f"no BENCH_*.json files found in {bench_dir}")

    columns = ("file", "bench", "run", "timestamp", "n", "queries",
               "smoke", "headline")
    lines = [
        "# Benchmark trajectory",
        "",
        "Aggregated from every `BENCH_*.json` in this directory by "
        "`python -m repro bench-report`.  One row per recorded run, in "
        "file order then run order — the per-file sequence is the "
        "perf trajectory across PRs.",
        "",
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(str(row[col]) for col in columns) + " |"
        )
    lines.append("")
    report = "\n".join(lines)
    out = Path(args.out)
    out.write_text(report)
    print(f"wrote {out} ({len(rows)} runs across "
          f"{len({row['file'] for row in rows})} files)")

    if args.csv:
        import csv

        with open(args.csv, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            writer.writerows(rows)
        print(f"wrote {args.csv}")


def _cmd_info(_args: argparse.Namespace) -> None:
    print(f"repro {repro.__version__} — ACORN (SIGMOD 2024) reproduction")
    print(f"numpy {np.__version__}")
    print("datasets:", ", ".join(DATASETS))
    print("see DESIGN.md / EXPERIMENTS.md for the experiment index")


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ACORN hybrid-search reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="recall-QPS sweep on a dataset")
    sweep.add_argument("--dataset", choices=sorted(DATASETS), default="sift")
    sweep.add_argument("--n", type=int, default=2000)
    sweep.add_argument("--queries", type=int, default=60)
    sweep.add_argument("--k", type=int, default=10)
    sweep.add_argument("--m", type=int, default=12)
    sweep.add_argument("--gamma", type=int, default=12)
    sweep.add_argument("--methods", default="acorn,acorn1,pre,post")
    sweep.add_argument("--efforts", default="10,40,160")
    sweep.add_argument("--recall-target", type=float, default=0.9)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(func=_cmd_sweep)

    corr = sub.add_parser("correlation",
                          help="measure C(D,Q) of the LAION workloads")
    corr.add_argument("--n", type=int, default=1500)
    corr.add_argument("--queries", type=int, default=40)
    corr.add_argument("--seed", type=int, default=3)
    corr.set_defaults(func=_cmd_correlation)

    bench = sub.add_parser(
        "bench-batch",
        help="batched-engine throughput vs a sequential search loop",
    )
    bench.add_argument("--n", type=int, default=10000)
    bench.add_argument("--queries", type=int, default=256)
    bench.add_argument("--dim", type=int, default=32)
    bench.add_argument("--k", type=int, default=10)
    bench.add_argument("--m", type=int, default=12)
    bench.add_argument("--gamma", type=int, default=12)
    bench.add_argument("--ef", type=int, default=32)
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--distinct-predicates", type=int, default=8)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", default="BENCH_engine.json")
    bench.set_defaults(func=_cmd_bench_batch)

    trav = sub.add_parser(
        "bench-traversal",
        help="CSR traversal kernel vs the legacy dict kernel",
    )
    trav.add_argument("--n", type=int, default=10000)
    trav.add_argument("--queries", type=int, default=128)
    trav.add_argument("--dim", type=int, default=32)
    trav.add_argument("--k", type=int, default=10)
    trav.add_argument("--m", type=int, default=12)
    trav.add_argument("--gamma", type=int, default=12)
    trav.add_argument("--ef", type=int, default=32)
    trav.add_argument("--workers", type=int, default=4)
    trav.add_argument("--distinct-predicates", type=int, default=8)
    trav.add_argument("--seed", type=int, default=0)
    trav.add_argument("--out", default="BENCH_traversal.json")
    trav.add_argument(
        "--smoke", action="store_true",
        help="small workload; exit nonzero if CSR is slower than dict",
    )
    trav.set_defaults(func=_cmd_bench_traversal)

    shard = sub.add_parser(
        "bench-shard",
        help="sharded scatter-gather vs the monolithic index",
    )
    shard.add_argument("--n", type=int, default=10000)
    shard.add_argument("--queries", type=int, default=128)
    shard.add_argument("--dim", type=int, default=32)
    shard.add_argument("--k", type=int, default=10)
    shard.add_argument("--m", type=int, default=12)
    shard.add_argument("--gamma", type=int, default=12)
    shard.add_argument("--ef", type=int, default=32)
    shard.add_argument("--workers", type=int, default=4)
    shard.add_argument("--shards", type=int, default=4)
    shard.add_argument("--distinct-predicates", type=int, default=8)
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--out", default="BENCH_shard.json")
    shard.add_argument(
        "--smoke", action="store_true",
        help="small workload at saturating ef; exit nonzero unless the "
             "router pruned shards and results match the monolithic index",
    )
    shard.set_defaults(func=_cmd_bench_shard)

    chaos = sub.add_parser(
        "bench-chaos",
        help="resilient scatter-gather under a seeded fault plan",
    )
    chaos.add_argument("--n", type=int, default=10000)
    chaos.add_argument("--queries", type=int, default=64)
    chaos.add_argument("--dim", type=int, default=32)
    chaos.add_argument("--k", type=int, default=10)
    chaos.add_argument("--m", type=int, default=12)
    chaos.add_argument("--gamma", type=int, default=12)
    chaos.add_argument("--ef", type=int, default=32)
    chaos.add_argument("--workers", type=int, default=1)
    chaos.add_argument("--shards", type=int, default=8)
    chaos.add_argument("--failure-rate", type=float, default=0.2)
    chaos.add_argument("--deadline", type=float, default=0.5,
                       help="per-shard deadline in injected-clock seconds")
    chaos.add_argument("--retries", type=int, default=1)
    chaos.add_argument("--distinct-predicates", type=int, default=8)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--out", default="BENCH_chaos.json")
    chaos.add_argument(
        "--smoke", action="store_true",
        help="small workload at saturating ef; exit nonzero unless "
             "failure accounting is exact, degraded results match the "
             "survivors-only ground truth, and every query stays within "
             "its injected-clock budget",
    )
    chaos.set_defaults(func=_cmd_bench_chaos)

    build = sub.add_parser(
        "bench-build",
        help="sequential vs wave-parallel index construction (Table 4 TTI)",
    )
    build.add_argument("--n", type=int, default=10000)
    build.add_argument("--queries", type=int, default=32)
    build.add_argument("--dim", type=int, default=32)
    build.add_argument("--k", type=int, default=10)
    build.add_argument("--m", type=int, default=12)
    build.add_argument("--gamma", type=int, default=12)
    build.add_argument("--ef-construction", type=int, default=144)
    build.add_argument("--ef", type=int, default=80,
                       help="ef_search for the recall-parity probe")
    build.add_argument("--workers", type=int, default=4)
    build.add_argument("--wave-cap", type=int, default=None,
                       help="max wave size (default scales with n)")
    build.add_argument("--distinct-predicates", type=int, default=8)
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--out", default="BENCH_build.json")
    build.add_argument(
        "--smoke", action="store_true",
        help="small workload; exit nonzero unless both graphs validate, "
             "same-seed parallel builds are identical, and parallel-build "
             "recall matches sequential within 0.01",
    )
    build.set_defaults(func=_cmd_bench_build)

    route = sub.add_parser(
        "bench-route",
        help="static s_min routing vs the adaptive cost-based planner "
             "on a correlated/anti-correlated workload",
    )
    route.add_argument("--n", type=int, default=10000)
    route.add_argument("--dim", type=int, default=32)
    route.add_argument("--queries", type=int, default=240)
    route.add_argument("--k", type=int, default=10)
    route.add_argument("--ef", type=int, default=64)
    route.add_argument("--m", type=int, default=16)
    route.add_argument("--gamma", type=int, default=12)
    route.add_argument("--workers", type=int, default=1)
    route.add_argument("--estimator", choices=("exact", "sampling"),
                       default="exact")
    route.add_argument("--sample-size", type=int, default=500,
                       help="sampling-estimator sample size")
    route.add_argument("--seed", type=int, default=0)
    route.add_argument("--smoke", action="store_true",
                       help="small run with hard regression gates (CI)")
    route.add_argument("--out", default="BENCH_route.json")
    route.set_defaults(func=_cmd_bench_route)

    quant = sub.add_parser(
        "bench-quant",
        help="quantized traversal hot path (int8/PQ-ADC + exact rerank) "
             "vs the float32 search on the same graph",
    )
    quant.add_argument("--n", type=int, default=10000)
    quant.add_argument("--queries", type=int, default=128)
    quant.add_argument("--dim", type=int, default=32)
    quant.add_argument("--k", type=int, default=10)
    quant.add_argument("--m", type=int, default=12)
    quant.add_argument("--gamma", type=int, default=12)
    quant.add_argument("--ef", type=int, default=192)
    quant.add_argument("--workers", type=int, default=4)
    quant.add_argument("--beam", type=int, default=32,
                       help="lockstep frontier width per round")
    quant.add_argument("--quantization", choices=("sq8", "pq"),
                       default="sq8")
    quant.add_argument("--rerank-factor", type=float, default=3.0)
    quant.add_argument("--recall-floor", type=float, default=0.95)
    quant.add_argument("--distinct-predicates", type=int, default=8)
    quant.add_argument("--seed", type=int, default=0)
    quant.add_argument("--out", default="BENCH_quant.json")
    quant.add_argument(
        "--smoke", action="store_true",
        help="small workload; exit nonzero unless quantized results are "
             "deterministic across two runs and recall clears the floor "
             "(the 2x QPS gate applies to full runs only)",
    )
    quant.set_defaults(func=_cmd_bench_quant)

    serving = sub.add_parser(
        "bench-serving",
        help="asyncio multi-tenant serving layer under seeded open-loop "
             "load (steady Poisson + flash crowd): goodput, tail "
             "latency, shed/degraded accounting",
    )
    serving.add_argument("--n", type=int, default=10000)
    serving.add_argument("--dim", type=int, default=32)
    serving.add_argument("--k", type=int, default=10)
    serving.add_argument("--m", type=int, default=12)
    serving.add_argument("--gamma", type=int, default=12)
    serving.add_argument("--ef", type=int, default=64)
    serving.add_argument("--workers", type=int, default=4,
                         help="engine worker threads inside the service")
    serving.add_argument("--pool", type=int, default=64,
                         help="distinct query vectors the traces draw from")
    serving.add_argument("--distinct-predicates", type=int, default=8)
    serving.add_argument("--max-batch", type=int, default=32)
    serving.add_argument("--latency-budget-ms", type=float, default=5.0)
    serving.add_argument("--max-pending", type=int, default=256)
    serving.add_argument("--tenants", type=int, default=4)
    serving.add_argument("--tenant-rate", type=float, default=150.0,
                         help="per-tenant token-bucket refill rate (qps)")
    serving.add_argument("--tenant-burst", type=float, default=20.0)
    serving.add_argument("--rate", type=float, default=800.0,
                         help="base open-loop arrival rate (qps)")
    serving.add_argument("--duration", type=float, default=2.0,
                         help="schedule length in seconds")
    serving.add_argument("--flash-multiplier", type=float, default=4.0)
    serving.add_argument("--seed", type=int, default=0)
    serving.add_argument("--out", default="BENCH_serving.json")
    serving.add_argument(
        "--smoke", action="store_true",
        help="small workload; exit nonzero unless both schedules replay "
             "deterministically on the virtual clock, the flash crowd "
             "sheds load, and the steady schedule serves load",
    )
    serving.set_defaults(func=_cmd_bench_serving)

    lifecycle = sub.add_parser(
        "bench-lifecycle",
        help="streaming index lifecycle: read QPS and recall under a "
             "concurrent seeded write stream with online compaction, "
             "gated by a double-replay determinism check",
    )
    lifecycle.add_argument("--n", type=int, default=8000,
                           help="initial (pre-stream) dataset size")
    lifecycle.add_argument("--dim", type=int, default=32)
    lifecycle.add_argument("--k", type=int, default=10)
    lifecycle.add_argument("--m", type=int, default=12)
    lifecycle.add_argument("--gamma", type=int, default=12)
    lifecycle.add_argument("--ef", type=int, default=64)
    lifecycle.add_argument("--ops", type=int, default=2000,
                           help="seeded insert/delete ops in the tape")
    lifecycle.add_argument("--reads", type=int, default=200,
                           help="interleaved reads in the virtual arm "
                                "(the timed arm reads open-loop)")
    lifecycle.add_argument("--delete-fraction", type=float, default=0.3)
    lifecycle.add_argument("--distinct-predicates", type=int, default=8)
    lifecycle.add_argument("--recall-floor", type=float, default=0.7)
    lifecycle.add_argument("--seed", type=int, default=0)
    lifecycle.add_argument("--out", default="BENCH_lifecycle.json")
    lifecycle.add_argument(
        "--smoke", action="store_true",
        help="small workload; exit nonzero unless the double replay is "
             "deterministic, no read failed or blocked during "
             "compaction, and concurrent recall clears the floor",
    )
    lifecycle.set_defaults(func=_cmd_bench_lifecycle)

    par = sub.add_parser(
        "bench-parallel",
        help="zero-copy shared-memory process executor vs the thread "
             "executor, gated on byte-identity, double-run determinism, "
             "and in-worker buffer identity",
    )
    par.add_argument("--n", type=int, default=10000)
    par.add_argument("--queries", type=int, default=256)
    par.add_argument("--dim", type=int, default=32)
    par.add_argument("--k", type=int, default=10)
    par.add_argument("--m", type=int, default=12)
    par.add_argument("--gamma", type=int, default=12)
    par.add_argument("--ef", type=int, default=32)
    par.add_argument("--workers", default="1,2,4,8",
                     help="comma-separated worker counts to sweep")
    par.add_argument("--distinct-predicates", type=int, default=8)
    par.add_argument("--seed", type=int, default=0)
    par.add_argument("--out", default="BENCH_parallel.json")
    par.add_argument(
        "--smoke", action="store_true",
        help="small workload at 1,2 workers; exit nonzero unless "
             "process results are byte-identical to the sequential "
             "loop, deterministic across a double run, and served "
             "zero-copy from shared memory (the 2x QPS gate applies "
             "to full runs on >= 4 CPUs only); exits clean with a "
             "skip notice when shared memory is unavailable",
    )
    par.set_defaults(func=_cmd_bench_parallel)

    report = sub.add_parser(
        "bench-report",
        help="aggregate every BENCH_*.json into one markdown "
             "perf-trajectory table (and optional CSV)",
    )
    report.add_argument("--dir", default=".",
                        help="directory to scan for BENCH_*.json")
    report.add_argument("--out", default="BENCH_REPORT.md")
    report.add_argument("--csv", default=None,
                        help="also write the rows as CSV to this path")
    report.set_defaults(func=_cmd_bench_report)

    info = sub.add_parser("info", help="version and environment summary")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
