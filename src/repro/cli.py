"""Command-line interface: ``python -m repro ...``.

Lets a user regenerate the paper's comparisons on any of the four
dataset surrogates without touching pytest::

    python -m repro sweep --dataset sift --n 4000 --methods acorn,acorn1,pre,post
    python -m repro correlation --n 2000
    python -m repro info

Every command prints the same text tables the benchmark harness emits.
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.baselines import PostFilterSearcher, PreFilterSearcher
from repro.core import AcornIndex, AcornOneIndex, AcornParams
from repro.datasets import (
    make_laion_like,
    make_paper_like,
    make_sift1m_like,
    make_tripclick_like,
    query_correlation,
)
from repro.eval import SweepRunner, render_sweeps
from repro.hnsw import HnswIndex
from repro.utils.timer import Timer

DATASETS = {
    "sift": lambda n, nq, seed: make_sift1m_like(n=n, dim=48, n_queries=nq,
                                                 seed=seed),
    "paper": lambda n, nq, seed: make_paper_like(n=n, dim=72, n_queries=nq,
                                                 seed=seed),
    "tripclick": lambda n, nq, seed: make_tripclick_like(
        n=n, dim=96, n_queries=nq, workload="areas", seed=seed
    ),
    "laion": lambda n, nq, seed: make_laion_like(
        n=n, dim=64, n_queries=nq, workload="no-cor", seed=seed
    ),
}


def _build_methods(names: list[str], dataset, m: int, gamma: int, seed: int):
    methods = {}
    for name in names:
        with Timer() as t:
            if name == "acorn":
                params = AcornParams(m=m, gamma=gamma, m_beta=2 * m,
                                     ef_construction=40)
                methods["ACORN-gamma"] = AcornIndex.build(
                    dataset.vectors, dataset.table, params=params, seed=seed
                )
            elif name == "acorn1":
                methods["ACORN-1"] = AcornOneIndex.build(
                    dataset.vectors, dataset.table, m=2 * m,
                    ef_construction=40, seed=seed,
                )
            elif name == "pre":
                methods["pre-filter"] = PreFilterSearcher(
                    dataset.vectors, dataset.table
                )
            elif name == "post":
                hnsw = HnswIndex.build(dataset.vectors, m=m,
                                       ef_construction=48, seed=seed)
                methods["HNSW post-filter"] = PostFilterSearcher(
                    hnsw, dataset.table, max_oversearch=0.5
                )
            else:
                raise SystemExit(
                    f"unknown method {name!r}; choose from acorn, acorn1, "
                    "pre, post"
                )
        print(f"  built {name} in {t.elapsed:.1f}s")
    return methods


def _cmd_sweep(args: argparse.Namespace) -> None:
    maker = DATASETS[args.dataset]
    print(f"generating {args.dataset}-like dataset "
          f"(n={args.n}, queries={args.queries})...")
    dataset = maker(args.n, args.queries, args.seed)
    print(f"average predicate selectivity: "
          f"{dataset.selectivities().mean():.3f}")
    methods = _build_methods(
        args.methods.split(","), dataset, args.m, args.gamma, args.seed
    )
    runner = SweepRunner(dataset, k=args.k)
    efforts = [int(e) for e in args.efforts.split(",")]
    sweeps = [
        runner.sweep(name, method, efforts=efforts)
        for name, method in methods.items()
    ]
    print()
    print(render_sweeps(sweeps, recall_target=args.recall_target))


def _cmd_correlation(args: argparse.Namespace) -> None:
    print(f"measuring C(D,Q) on LAION-like workloads (n={args.n})...")
    for workload in ("pos-cor", "no-cor", "neg-cor", "regex"):
        dataset = make_laion_like(n=args.n, dim=64, n_queries=args.queries,
                                  workload=workload, seed=args.seed)
        c = query_correlation(dataset, n_resamples=5, seed=0)
        print(f"  {workload:>8}: selectivity="
              f"{dataset.selectivities().mean():.3f}  C={c:+10.2f}")


def _cmd_info(_args: argparse.Namespace) -> None:
    print(f"repro {repro.__version__} — ACORN (SIGMOD 2024) reproduction")
    print(f"numpy {np.__version__}")
    print("datasets:", ", ".join(DATASETS))
    print("see DESIGN.md / EXPERIMENTS.md for the experiment index")


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ACORN hybrid-search reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="recall-QPS sweep on a dataset")
    sweep.add_argument("--dataset", choices=sorted(DATASETS), default="sift")
    sweep.add_argument("--n", type=int, default=2000)
    sweep.add_argument("--queries", type=int, default=60)
    sweep.add_argument("--k", type=int, default=10)
    sweep.add_argument("--m", type=int, default=12)
    sweep.add_argument("--gamma", type=int, default=12)
    sweep.add_argument("--methods", default="acorn,acorn1,pre,post")
    sweep.add_argument("--efforts", default="10,40,160")
    sweep.add_argument("--recall-target", type=float, default=0.9)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(func=_cmd_sweep)

    corr = sub.add_parser("correlation",
                          help="measure C(D,Q) of the LAION workloads")
    corr.add_argument("--n", type=int, default=1500)
    corr.add_argument("--queries", type=int, default=40)
    corr.add_argument("--seed", type=int, default=3)
    corr.set_defaults(func=_cmd_correlation)

    info = sub.add_parser("info", help="version and environment summary")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
