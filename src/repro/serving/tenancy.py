"""Per-tenant admission state: quotas, token buckets, cache namespaces.

Multi-tenant serving needs three isolations that the library layers
below do not provide on their own:

- **rate isolation** — a token bucket per tenant (refilled from the
  service's pluggable :class:`~repro.utils.clock.Clock`, so quota
  behaviour is bit-for-bit deterministic on a
  :class:`~repro.utils.clock.FakeClock`);
- **queue isolation** — a bounded count of a tenant's requests waiting
  in the coalescing buffer, so one tenant's burst cannot consume the
  whole batch window;
- **cache isolation** — a partitioned
  :class:`~repro.engine.cache.PredicateCache` namespace per tenant, so
  one tenant's churn of distinct predicates cannot evict another
  tenant's hot bitmasks.

Everything here is called from the service's event loop only, so no
locking beyond what :class:`PredicateCache` already does internally.
"""

from __future__ import annotations

import dataclasses
import math

from repro.engine.cache import CacheInfo, PredicateCache
from repro.utils.clock import Clock


@dataclasses.dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    Attributes:
        rate_qps: sustained admission rate (token-bucket refill rate).
            ``math.inf`` (the default) disables rate limiting.
        burst: token-bucket capacity — the number of requests a tenant
            may admit instantaneously from a full bucket.
        max_queue: maximum requests from this tenant simultaneously
            waiting in the coalescing buffer.
        cache_size: LRU capacity of the tenant's private
            predicate-bitmask cache namespace.
    """

    rate_qps: float = math.inf
    burst: float = 32.0
    max_queue: int = 64
    cache_size: int = 32

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError(f"rate_qps must be positive, got {self.rate_qps}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.cache_size < 1:
            raise ValueError(
                f"cache_size must be >= 1, got {self.cache_size}"
            )


class TokenBucket:
    """A clock-driven token bucket (deterministic on a FakeClock).

    Tokens refill continuously at ``rate`` per second up to ``burst``.
    The bucket reads time lazily on each :meth:`try_take`, so it never
    schedules timers — virtual-clock tests advance time and observe
    exactly the refill arithmetic implies.

    Args:
        rate: refill rate in tokens per second (``math.inf`` keeps the
            bucket permanently full).
        burst: bucket capacity; also the initial fill.
        clock: time source for refill accounting.
    """

    def __init__(self, rate: float, burst: float, clock: Clock) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last_refill = clock.monotonic()

    def _refill(self, now: float) -> None:
        elapsed = max(now - self._last_refill, 0.0)
        self._last_refill = now
        if math.isinf(self.rate):
            self._tokens = self.burst
        else:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_take(self, amount: float = 1.0) -> bool:
        """Consume ``amount`` tokens if available; False otherwise."""
        self._refill(self._clock.monotonic())
        # Tolerance absorbs float refill drift at exact-rate arrivals.
        if self._tokens + 1e-9 >= amount:
            self._tokens = min(self._tokens - amount, self.burst)
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the current clock)."""
        self._refill(self._clock.monotonic())
        return self._tokens


@dataclasses.dataclass
class TenantState:
    """Live serving state for one tenant.

    Attributes:
        tenant_id: the tenant's identifier.
        quota: the quota this state enforces.
        bucket: the tenant's admission token bucket.
        cache: the tenant's private predicate-bitmask cache.
        queue_depth: requests currently waiting in the coalescing
            buffer on this tenant's behalf.
        admitted / rejected / ok / degraded: cumulative *read-side*
            outcome counters (``admitted == ok + degraded`` once
            drained, ``admitted + rejected`` == queries offered).
        writes_rejected: write submissions shed at admission.  Kept
            out of ``rejected`` so the read-side reconciliation above
            survives mixed read/write workloads — the service-level
            write ledger is likewise separate.
    """

    tenant_id: str
    quota: TenantQuota
    bucket: TokenBucket
    cache: PredicateCache
    queue_depth: int = 0
    admitted: int = 0
    rejected: int = 0
    ok: int = 0
    degraded: int = 0
    writes_rejected: int = 0

    def counters(self) -> dict:
        """JSON-serializable outcome counters for this tenant."""
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "ok": self.ok,
            "degraded": self.degraded,
            "writes_rejected": self.writes_rejected,
        }


class TenantRegistry:
    """Lazily-created :class:`TenantState` per tenant id.

    Args:
        default_quota: quota applied to tenants without an explicit
            entry in ``quotas``.
        quotas: per-tenant overrides keyed by tenant id.
        clock: time source shared with the service (token buckets
            refill from it).
    """

    def __init__(
        self,
        default_quota: TenantQuota,
        quotas: dict[str, TenantQuota] | None,
        clock: Clock,
    ) -> None:
        self.default_quota = default_quota
        self.quotas = dict(quotas or {})
        self._clock = clock
        self._tenants: dict[str, TenantState] = {}

    def get(self, tenant_id: str) -> TenantState:
        """The (lazily created) state for ``tenant_id``."""
        state = self._tenants.get(tenant_id)
        if state is None:
            quota = self.quotas.get(tenant_id, self.default_quota)
            state = TenantState(
                tenant_id=tenant_id,
                quota=quota,
                bucket=TokenBucket(quota.rate_qps, quota.burst, self._clock),
                cache=PredicateCache(quota.cache_size),
            )
            self._tenants[tenant_id] = state
        return state

    def known(self) -> list[TenantState]:
        """All tenants seen so far, sorted by id (deterministic)."""
        return [self._tenants[tid] for tid in sorted(self._tenants)]

    def cache_info(self, tenant_id: str) -> CacheInfo:
        """Predicate-cache counters for one tenant's namespace."""
        return self.get(tenant_id).cache.info()
