"""Seeded open-loop load generation and replay for the serving layer.

Open-loop means arrivals come from a fixed schedule that does not react
to service latency — the standard methodology for saturation and tail
studies (a closed loop self-throttles and hides queueing collapse).
Three pieces:

- :class:`ArrivalSchedule` + :func:`generate_arrivals` — a fully
  seeded arrival trace: Poisson inter-arrival gaps at ``rate_qps``,
  tenants drawn from a Zipf-skewed distribution, and an optional
  flash-crowd window that multiplies the rate for a sub-interval.
  Same schedule + seed → byte-identical trace.
- :func:`replay` — deterministic virtual-time replay: advances the
  service's :class:`~repro.utils.clock.FakeClock` to each arrival,
  pumps expired deadlines *before* the new query enters the buffer
  (so batch composition is a pure function of the trace), submits,
  and finally drains.  Wall time is microseconds regardless of the
  schedule's virtual duration.
- :func:`replay_realtime` — the same trace paced by real
  ``asyncio.sleep``, for wall-clock latency/goodput measurement in
  ``bench-serving``.

:func:`summarize_load` condenses the responses into the SLO-style
record ``BENCH_serving.json`` stores: shed/degraded accounting that
sums exactly to offered load, latency percentiles (``None`` when every
request was shed), goodput, and per-tenant outcomes.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time

import numpy as np

from repro.eval.stats import percentile_summary
from repro.serving.service import AcornService, ServedResponse
from repro.utils.clock import FakeClock


@dataclasses.dataclass(frozen=True)
class Arrival:
    """One scheduled request: when, which tenant, which query."""

    time_s: float
    tenant_id: str
    query_index: int


@dataclasses.dataclass(frozen=True)
class ArrivalSchedule:
    """Specification of a seeded open-loop arrival process.

    Attributes:
        rate_qps: base Poisson arrival rate.
        duration_s: schedule length; arrivals at or beyond it are cut.
        n_tenants: tenants to draw from (ids ``tenant-0`` …).
        tenant_skew: Zipf exponent for tenant popularity — tenant ``i``
            gets weight ``1/(i+1)**tenant_skew``; 0.0 is uniform.
        query_pool: number of distinct queries the trace indexes into.
        flash_start_s: start of the flash-crowd window (``None``
            disables it).
        flash_duration_s: length of the flash-crowd window.
        flash_multiplier: rate multiplier inside the window.
        seed: RNG seed; the trace is a pure function of this spec.
    """

    rate_qps: float
    duration_s: float
    n_tenants: int = 4
    tenant_skew: float = 1.1
    query_pool: int = 16
    flash_start_s: float | None = None
    flash_duration_s: float = 0.0
    flash_multiplier: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError(f"rate_qps must be positive, got {self.rate_qps}")
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if self.n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {self.n_tenants}")
        if self.query_pool < 1:
            raise ValueError(
                f"query_pool must be >= 1, got {self.query_pool}"
            )
        if self.flash_multiplier < 1.0:
            raise ValueError(
                f"flash_multiplier must be >= 1, got {self.flash_multiplier}"
            )

    @classmethod
    def poisson(cls, rate_qps: float, duration_s: float, **kwargs):
        """A steady Poisson schedule (no flash window)."""
        return cls(rate_qps=rate_qps, duration_s=duration_s, **kwargs)

    @classmethod
    def flash_crowd(
        cls,
        rate_qps: float,
        duration_s: float,
        flash_start_s: float,
        flash_duration_s: float,
        flash_multiplier: float,
        **kwargs,
    ):
        """A Poisson schedule with a rate spike in the middle."""
        return cls(
            rate_qps=rate_qps,
            duration_s=duration_s,
            flash_start_s=flash_start_s,
            flash_duration_s=flash_duration_s,
            flash_multiplier=flash_multiplier,
            **kwargs,
        )

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at schedule time ``t``."""
        if (
            self.flash_start_s is not None
            and self.flash_start_s <= t < self.flash_start_s + self.flash_duration_s
        ):
            return self.rate_qps * self.flash_multiplier
        return self.rate_qps

    def tenant_weights(self) -> np.ndarray:
        """Normalized Zipf popularity over ``n_tenants``."""
        ranks = np.arange(1, self.n_tenants + 1, dtype=np.float64)
        weights = 1.0 / ranks**self.tenant_skew
        return weights / weights.sum()


def generate_arrivals(schedule: ArrivalSchedule) -> list[Arrival]:
    """Materialize the seeded arrival trace for ``schedule``.

    The gap after each arrival is drawn at the rate in effect at the
    *current* time (rate changes take effect at the next draw — a
    standard thinning-free approximation whose error is one gap at
    each window edge, and which keeps the trace a simple pure function
    of the seed).
    """
    rng = np.random.default_rng(schedule.seed)
    weights = schedule.tenant_weights()
    arrivals: list[Arrival] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / schedule.rate_at(t)))
        if t >= schedule.duration_s:
            break
        tenant = int(rng.choice(schedule.n_tenants, p=weights))
        query_index = int(rng.integers(0, schedule.query_pool))
        arrivals.append(
            Arrival(
                time_s=t,
                tenant_id=f"tenant-{tenant}",
                query_index=query_index,
            )
        )
    return arrivals


async def replay(
    service: AcornService,
    arrivals: list[Arrival],
    queries,
    predicates,
) -> list[ServedResponse]:
    """Deterministic virtual-time replay of a trace against a service.

    Requires the service to run on a :class:`FakeClock`.  For each
    arrival: advance the clock to its timestamp, pump deadlines that
    expired strictly before it (batch composition then depends only on
    the trace), submit, and let the submission settle.  Responses come
    back in arrival order, one per arrival — accounting always sums.

    Args:
        service: a virtual-mode :class:`AcornService`.
        queries: query-vector pool indexed by ``Arrival.query_index``.
        predicates: predicate pool parallel to ``queries``.
    """
    clock = service.clock
    if service.realtime or not isinstance(clock, FakeClock):
        raise ValueError(
            "replay() needs a FakeClock-driven service; use "
            "replay_realtime() for wall-clock runs"
        )
    tasks: list[asyncio.Task] = []
    for arrival in arrivals:
        gap = arrival.time_s - clock.monotonic()
        if gap > 0:
            clock.advance(gap)
        await service.pump()
        tasks.append(
            asyncio.ensure_future(
                service.submit(
                    queries[arrival.query_index],
                    predicates[arrival.query_index],
                    tenant_id=arrival.tenant_id,
                )
            )
        )
        # One zero-delay hop lets the submission reach the buffer (or
        # resolve its rejection) before the next arrival is considered.
        await asyncio.sleep(0)
    await service.drain()
    return list(await asyncio.gather(*tasks))


async def replay_realtime(
    service: AcornService,
    arrivals: list[Arrival],
    queries,
    predicates,
) -> list[ServedResponse]:
    """Open-loop wall-clock replay (submissions never wait for
    responses; pacing error does not compound)."""
    start = time.perf_counter()
    tasks: list[asyncio.Task] = []
    for arrival in arrivals:
        delay = arrival.time_s - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(
                service.submit(
                    queries[arrival.query_index],
                    predicates[arrival.query_index],
                    tenant_id=arrival.tenant_id,
                )
            )
        )
    responses = list(await asyncio.gather(*tasks))
    await service.drain()
    return responses


def summarize_load(
    arrivals: list[Arrival],
    responses: list[ServedResponse],
    wall_s: float | None = None,
) -> dict:
    """Condense a replay into the SLO record the bench stores.

    ``ok + degraded + rejected == offered`` by construction (one
    response per arrival).  Latency/queue-wait percentiles are ``None``
    when every request was shed (the empty-batch case
    :func:`percentile_summary` now encodes as ``None`` rather than
    fake zeros).

    Args:
        wall_s: wall-clock seconds the replay took; enables
            ``goodput_qps`` (served throughput at the offered rate).
    """
    offered = len(arrivals)
    served = [r for r in responses if not r.rejected]
    ok = sum(1 for r in responses if r.ok)
    degraded = sum(1 for r in responses if r.degraded)
    rejected = sum(1 for r in responses if r.rejected)
    latency = percentile_summary(r.latency_ms for r in served)
    queue_wait = percentile_summary(r.queue_wait_ms for r in served)
    tenants: dict[str, dict] = {}
    for arrival, response in zip(arrivals, responses):
        entry = tenants.setdefault(
            arrival.tenant_id, {"offered": 0, "rejected": 0}
        )
        entry["offered"] += 1
        entry["rejected"] += int(response.rejected)
    return {
        "offered": offered,
        "ok": ok,
        "degraded": degraded,
        "rejected": rejected,
        "shed_fraction": rejected / offered if offered else 0.0,
        "goodput_qps": (
            len(served) / wall_s if wall_s and wall_s > 0 else None
        ),
        "latency_ms": dataclasses.asdict(latency),
        "queue_wait_ms": dataclasses.asdict(queue_wait),
        "mean_batch_size": (
            float(np.mean([r.batch_size_served for r in served]))
            if served else 0.0
        ),
        "min_recall_ceiling": min(
            (r.stats.recall_ceiling for r in served), default=1.0
        ),
        "tenants": {tid: tenants[tid] for tid in sorted(tenants)},
    }
