"""Asyncio multi-tenant serving layer over the batch engine.

The request-path front end of the reproduction: dynamic GEMM
coalescing with a latency budget, per-tenant admission control
(token buckets, bounded queues, partitioned predicate-cache
namespaces), breaker-aware load shedding with explicit
rejected/degraded accounting, and a seeded open-loop load harness —
all on a pluggable clock so every behaviour is testable without
sleeping.  See ``docs/serving.md``.
"""

from repro.serving.loadgen import (
    Arrival,
    ArrivalSchedule,
    generate_arrivals,
    replay,
    replay_realtime,
    summarize_load,
)
from repro.serving.service import (
    REJECT_BREAKERS,
    REJECT_CLOSED,
    REJECT_OVERLOAD,
    REJECT_TENANT_QUEUE,
    REJECT_TENANT_QUOTA,
    STATUS_APPLIED,
    AcornService,
    ServedResponse,
    ServingConfig,
    WriteResponse,
)
from repro.serving.tenancy import TenantQuota, TenantRegistry, TokenBucket

__all__ = [
    "AcornService",
    "Arrival",
    "ArrivalSchedule",
    "REJECT_BREAKERS",
    "REJECT_CLOSED",
    "REJECT_OVERLOAD",
    "REJECT_TENANT_QUEUE",
    "REJECT_TENANT_QUOTA",
    "STATUS_APPLIED",
    "ServedResponse",
    "ServingConfig",
    "WriteResponse",
    "TenantQuota",
    "TenantRegistry",
    "TokenBucket",
    "generate_arrivals",
    "replay",
    "replay_realtime",
    "summarize_load",
]
