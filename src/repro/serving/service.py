"""Asyncio front end: request coalescing, admission control, backpressure.

:class:`AcornService` is the request-path entry point over any searcher
the batch engine accepts (:class:`~repro.core.acorn.AcornIndex`,
:class:`~repro.shard.sharded.ShardedAcornIndex`, a routed planner, …).
Three mechanisms compose:

- **Dynamic coalescing.**  ``await service.submit(...)`` parks each
  admitted query in a FIFO buffer.  The buffer dispatches as one
  :class:`~repro.engine.engine.QueryBatch` the moment it holds
  ``max_batch`` queries, or when the oldest query's
  ``latency_budget_ms`` deadline expires — so light traffic pays at
  most the budget in queueing delay while heavy traffic rides full
  GEMM batches.  Execution happens on a single dispatch thread via
  ``loop.run_in_executor`` (one batch in flight at a time keeps batch
  composition deterministic); inside the batch the
  :class:`~repro.engine.engine.SearchEngine` fans out across its own
  worker pool.
- **Admission control.**  Before a query may enter the buffer it must
  pass, in order: circuit-breaker shedding (fraction of open shard
  breakers vs ``shed_breaker_fraction``), the global ``max_pending``
  backlog bound, the tenant's bounded queue, and the tenant's token
  bucket (:mod:`repro.serving.tenancy`).  A failed check resolves the
  call *immediately* with ``status="rejected"`` and a machine-readable
  reason — load shedding is explicit, never an exception or a hang.
- **Degraded accounting.**  Queries that execute against a partially
  failed sharded index surface ``status="degraded"`` with the engine's
  exact ``recall_ceiling`` bookkeeping intact, so SLO dashboards can
  separate "fast but partial" from "healthy".

All time flows through a pluggable :class:`~repro.utils.clock.Clock`.
Under a :class:`~repro.utils.clock.SystemClock` (``realtime=True``) the
deadline flush is driven by ``loop.call_later`` timers.  Under a
:class:`~repro.utils.clock.FakeClock` no real timers exist: a driver
(the load generator, or a test) advances the clock and calls
:meth:`AcornService.pump` / :meth:`AcornService.drain`, which makes
every admission decision, batch composition, and latency figure
bit-for-bit deterministic — no test sleeps.
"""

from __future__ import annotations

import asyncio
import dataclasses
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.engine.engine import QueryBatch, SearchEngine, resolve_table
from repro.engine.instrumentation import QueryStats
from repro.serving.tenancy import TenantQuota, TenantRegistry, TenantState
from repro.utils.clock import Clock, SystemClock

# Machine-readable rejection reasons (the admission log records these).
REJECT_BREAKERS = "breakers-open"
REJECT_OVERLOAD = "service-overloaded"
REJECT_TENANT_QUEUE = "tenant-queue-full"
REJECT_TENANT_QUOTA = "tenant-quota"
REJECT_CLOSED = "service-closed"

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_REJECTED = "rejected"
STATUS_APPLIED = "applied"


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Tuning knobs for :class:`AcornService`.

    Attributes:
        k: neighbors returned per query (service-wide).
        ef_search: search-effort knob forwarded to the searcher.
        max_batch: coalescing buffer size that triggers an immediate
            dispatch.
        latency_budget_ms: maximum milliseconds a query may wait in the
            coalescing buffer before a (possibly partial) batch is
            dispatched on its behalf.
        max_pending: global bound on the service-side backlog —
            queries in the coalescing buffer plus queries dispatched
            but not yet answered; arrivals beyond it are shed with
            ``service-overloaded``.
        default_quota: admission quota for tenants without an explicit
            override.
        quotas: per-tenant quota overrides keyed by tenant id.
        shed_breaker_fraction: when the serving searcher exposes shard
            circuit breakers and at least this fraction of them is
            open, new arrivals are shed with ``breakers-open``
            (``None`` disables breaker-aware shedding).
        engine_workers: worker threads of the internal
            :class:`~repro.engine.engine.SearchEngine`.
        executor: the engine's batch fan-out mechanism — ``"thread"``
            (default), ``"sync"``, or ``"process"`` for the zero-copy
            shared-memory worker pool (``docs/parallelism.md``).
            Byte-identical results either way; ``"process"`` moves the
            GIL-bound traversal loops off the event loop's host
            process.
    """

    k: int = 10
    ef_search: int = 64
    max_batch: int = 32
    latency_budget_ms: float = 5.0
    max_pending: int = 256
    default_quota: TenantQuota = dataclasses.field(default_factory=TenantQuota)
    quotas: dict[str, TenantQuota] = dataclasses.field(default_factory=dict)
    shed_breaker_fraction: float | None = None
    engine_workers: int = 1
    executor: str = "thread"

    def __post_init__(self) -> None:
        from repro.parallel import resolve_executor

        resolve_executor(self.executor)
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.latency_budget_ms < 0:
            raise ValueError(
                f"latency_budget_ms must be >= 0, got {self.latency_budget_ms}"
            )
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.shed_breaker_fraction is not None and not (
            0.0 < self.shed_breaker_fraction <= 1.0
        ):
            raise ValueError(
                "shed_breaker_fraction must be in (0, 1], got "
                f"{self.shed_breaker_fraction}"
            )


@dataclasses.dataclass(frozen=True)
class ServedResponse:
    """What one ``submit`` call resolves to — never an exception for
    load shedding or degraded shards.

    Attributes:
        tenant_id: the submitting tenant.
        status: ``"ok"``, ``"degraded"`` (partial top-k with a recall
            ceiling), or ``"rejected"`` (shed at admission).
        reason: machine-readable shed reason (``""`` unless rejected).
        result: the :class:`~repro.hnsw.hnsw.SearchResult` (``None``
            when rejected).
        stats: the enriched :class:`QueryStats` record (``None`` when
            rejected) — carries ``queue_wait_ms``,
            ``batch_size_served`` and ``tenant_id``.
        queue_wait_ms: milliseconds spent in the coalescing buffer.
        latency_ms: milliseconds from admission to response.
        batch_size_served: size of the GEMM batch this query rode in
            (0 when rejected).
    """

    tenant_id: str
    status: str
    reason: str = ""
    result: object | None = None
    stats: QueryStats | None = None
    queue_wait_ms: float = 0.0
    latency_ms: float = 0.0
    batch_size_served: int = 0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def rejected(self) -> bool:
        return self.status == STATUS_REJECTED

    @property
    def degraded(self) -> bool:
        return self.status == STATUS_DEGRADED


@dataclasses.dataclass(frozen=True)
class WriteResponse:
    """What one ``submit_write`` call resolves to.

    Writes share the read path's admission gate (breakers, backlog,
    tenant queue, tenant quota) so a tenant cannot starve readers by
    flooding mutations, but they apply synchronously against the
    lifecycle delta rather than riding a coalesced GEMM batch.

    Attributes:
        tenant_id: the submitting tenant.
        op: ``"insert"`` or ``"delete"``.
        status: ``"applied"`` or ``"rejected"``.
        reason: machine-readable shed reason (``""`` unless rejected).
        external_id: the id the lifecycle assigned (insert) or the id
            targeted (delete); -1 when rejected.
        applied: for deletes, whether the id was live (inserts: True
            when applied).
        epoch: the lifecycle epoch current after the write (0 when
            rejected or when the searcher has no epoch counter).
    """

    tenant_id: str
    op: str
    status: str
    reason: str = ""
    external_id: int = -1
    applied: bool = False
    epoch: int = 0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_APPLIED

    @property
    def rejected(self) -> bool:
        return self.status == STATUS_REJECTED


@dataclasses.dataclass
class _PendingQuery:
    """One admitted query parked in the coalescing buffer."""

    tenant_id: str
    query: np.ndarray
    compiled: object
    cache_hit: bool
    enqueued_s: float
    deadline_s: float
    future: asyncio.Future


class AcornService:
    """Asyncio multi-tenant serving layer over a searcher.

    A service instance binds to the first event loop that calls
    :meth:`submit` and must stay on it.  Admission decisions, buffer
    mutation, and future resolution all happen on that loop; only the
    batched search itself leaves it (``run_in_executor`` on a
    single-thread dispatch pool).

    Args:
        searcher: anything the batch engine accepts (``search(query,
            predicate, k, ef_search=...)``).
        config: serving knobs; defaults are test-friendly.
        clock: time source.  A :class:`SystemClock` (default) runs the
            deadline flush on real ``loop.call_later`` timers; any
            other clock (e.g. :class:`~repro.utils.clock.FakeClock`)
            switches the service to virtual mode, where a driver calls
            :meth:`pump`/:meth:`drain` instead and nothing sleeps.
        table: attribute table predicates compile against; defaults to
            the searcher's own.
    """

    def __init__(
        self,
        searcher,
        config: ServingConfig | None = None,
        clock: Clock | None = None,
        table=None,
        compactor=None,
    ) -> None:
        self.config = config or ServingConfig()
        self.clock = clock or SystemClock()
        self.realtime = isinstance(self.clock, SystemClock)
        self.searcher = searcher
        self._table_override = table
        if self.table is None:
            raise ValueError(
                "AcornService needs an attribute table to compile tenant "
                "predicates against; pass table= or use a searcher that "
                "carries one"
            )
        self.engine = SearchEngine(
            searcher, num_workers=self.config.engine_workers, table=table,
            executor=self.config.executor,
        )
        self.tenants = TenantRegistry(
            self.config.default_quota, self.config.quotas, self.clock
        )
        self._pending: list[_PendingQuery] = []
        self._inflight: set[asyncio.Task] = set()
        self._inflight_queries = 0
        self._timer: asyncio.TimerHandle | None = None
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving-dispatch"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False
        self.admission_log: list[tuple[str, str]] = []
        self._counters = {
            "offered": 0,
            "admitted": 0,
            "rejected": 0,
            "ok": 0,
            "degraded": 0,
            "batches_dispatched": 0,
        }
        # Writes keep their own ledger so summary()'s pinned read-side
        # accounting (offered == admitted + rejected) stays untouched.
        self.compactor = compactor
        self.write_counters = {
            "offered": 0,
            "applied": 0,
            "rejected": 0,
            "inserts": 0,
            "deletes": 0,
            "compactor_ticks": 0,
        }

    @property
    def table(self):
        """The table tenant predicates currently compile against.

        Re-resolved from the searcher on every read (unless an explicit
        ``table=`` was given): lifecycle searchers swap their base
        table on compaction, and a mask compiled against a stale table
        must not be applied to the new base.  Epoch snapshots validate
        masks by table identity, so a mask compiled here just before a
        compaction is recompiled snapshot-side rather than misapplied.
        """
        if self._table_override is not None:
            return self._table_override
        return resolve_table(self.searcher)

    # ------------------------------------------------------------------
    # Admission + submission
    # ------------------------------------------------------------------

    def open_breaker_fraction(self) -> float:
        """Fraction of the searcher's shard breakers currently open
        (0.0 for searchers without circuit breakers)."""
        probe = getattr(self.searcher, "open_breaker_fraction", None)
        if callable(probe):
            return float(probe())
        return 0.0

    def _admission_verdict(self, tenant: TenantState) -> str | None:
        """None to admit, else the rejection reason.

        Check order matters and is part of the contract: service-level
        health (breakers), then the global backlog bound, then the
        tenant's queue bound, and only then the tenant's token bucket —
        a query must have a seat before it spends a token.
        """
        if self._closed:
            return REJECT_CLOSED
        shed_at = self.config.shed_breaker_fraction
        if shed_at is not None and self.open_breaker_fraction() >= shed_at:
            return REJECT_BREAKERS
        # max_pending bounds the whole service-side backlog: queries
        # coalescing *plus* queries dispatched but not yet answered —
        # otherwise saturation just moves the unbounded queue behind
        # the dispatch thread where no admission check can see it.
        if (
            len(self._pending) + self._inflight_queries
            >= self.config.max_pending
        ):
            return REJECT_OVERLOAD
        if tenant.queue_depth >= tenant.quota.max_queue:
            return REJECT_TENANT_QUEUE
        if not tenant.bucket.try_take():
            return REJECT_TENANT_QUOTA
        return None

    async def submit(
        self, query, predicate, tenant_id: str = "default"
    ) -> ServedResponse:
        """Admit, coalesce, and answer one hybrid query.

        Never raises for load shedding or shard degradation — those
        resolve to ``rejected`` / ``degraded`` responses.  Searcher
        exceptions (no resilience policy installed) do propagate.
        """
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise RuntimeError(
                "AcornService is bound to another event loop; create one "
                "service per loop"
            )
        self._counters["offered"] += 1
        tenant = self.tenants.get(tenant_id)
        verdict = self._admission_verdict(tenant)
        self.admission_log.append((tenant_id, verdict or "admit"))
        if verdict is not None:
            tenant.rejected += 1
            self._counters["rejected"] += 1
            return ServedResponse(
                tenant_id=tenant_id, status=STATUS_REJECTED, reason=verdict
            )

        compiled, cache_hit = tenant.cache.get_or_compile(
            predicate, self.table
        )
        now = self.clock.monotonic()
        pending = _PendingQuery(
            tenant_id=tenant_id,
            query=np.asarray(query, dtype=np.float32),
            compiled=compiled,
            cache_hit=cache_hit,
            enqueued_s=now,
            deadline_s=now + self.config.latency_budget_ms / 1000.0,
            future=loop.create_future(),
        )
        self._pending.append(pending)
        tenant.queue_depth += 1
        tenant.admitted += 1
        self._counters["admitted"] += 1
        if len(self._pending) >= self.config.max_batch:
            self._flush(now)
        elif self.realtime:
            self._arm_timer()
        return await pending.future

    async def submit_write(
        self,
        op: str,
        *,
        tenant_id: str = "default",
        vector=None,
        row=None,
        external_id: int | None = None,
    ) -> WriteResponse:
        """Admit and apply one mutation against the lifecycle searcher.

        ``op="insert"`` requires ``vector`` and ``row``; ``op="delete"``
        requires ``external_id``.  Writes pass through the same
        admission gate as reads (same check order, same token bucket),
        then apply synchronously to the searcher's delta index — the
        searcher must expose ``insert``/``delete``
        (:class:`~repro.lifecycle.manager.LifecycleIndex` does).
        Rejections resolve to a ``rejected`` response, never an
        exception; malformed calls (missing operands, unknown op,
        searcher without a write path) do raise.
        """
        if op not in ("insert", "delete"):
            raise ValueError(f"unknown write op {op!r}")
        apply = getattr(self.searcher, op, None)
        if not callable(apply):
            raise TypeError(
                "submit_write needs a searcher with insert/delete "
                "(e.g. repro.lifecycle.LifecycleIndex); "
                f"{type(self.searcher).__name__} has no {op}()"
            )
        if op == "insert" and (vector is None or row is None):
            raise ValueError("insert requires vector= and row=")
        if op == "delete" and external_id is None:
            raise ValueError("delete requires external_id=")
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise RuntimeError(
                "AcornService is bound to another event loop; create one "
                "service per loop"
            )
        self.write_counters["offered"] += 1
        tenant = self.tenants.get(tenant_id)
        verdict = self._admission_verdict(tenant)
        self.admission_log.append((tenant_id, verdict or f"admit-{op}"))
        if verdict is not None:
            # Billed to the tenant's write ledger, not `rejected`:
            # read-side offered/admitted/rejected must keep reconciling
            # in summary() under mixed read/write load.
            tenant.writes_rejected += 1
            self.write_counters["rejected"] += 1
            return WriteResponse(
                tenant_id=tenant_id, op=op, status=STATUS_REJECTED,
                reason=verdict,
            )
        if op == "insert":
            new_id = int(apply(vector, row))
            applied = True
            self.write_counters["inserts"] += 1
        else:
            new_id = int(external_id)
            applied = bool(apply(new_id))
            self.write_counters["deletes"] += 1
        self.write_counters["applied"] += 1
        self._tick_compactor()
        return WriteResponse(
            tenant_id=tenant_id, op=op, status=STATUS_APPLIED,
            external_id=new_id, applied=applied,
            epoch=int(getattr(self.searcher, "current_epoch", 0)),
        )

    def _tick_compactor(self) -> None:
        """Give the attached compactor (if any) a chance to run.

        Ticked after every applied write and on every :meth:`poll`, so
        compaction progresses on the service's clock — under a
        :class:`~repro.utils.clock.FakeClock` the whole maintenance
        schedule replays deterministically.
        """
        if self.compactor is None:
            return
        self.write_counters["compactor_ticks"] += 1
        self.compactor.tick()

    # ------------------------------------------------------------------
    # Coalescing + dispatch
    # ------------------------------------------------------------------

    def _arm_timer(self) -> None:
        """(Re)arm the deadline flush timer for the oldest pending query."""
        if not self._pending or self._loop is None:
            return
        delay = max(self._pending[0].deadline_s - self.clock.monotonic(), 0.0)
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self._loop.call_later(delay, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        self.poll()
        if self._pending:
            self._arm_timer()

    def poll(self) -> int:
        """Flush every batch that is due at the current clock reading.

        Returns the number of batches dispatched.  Realtime timers call
        this automatically; virtual-clock drivers call it (via
        :meth:`pump`) after advancing the clock.
        """
        now = self.clock.monotonic()
        dispatched = 0
        while self._pending and (
            len(self._pending) >= self.config.max_batch
            or self._pending[0].deadline_s <= now
        ):
            self._flush(now)
            dispatched += 1
        self._tick_compactor()
        return dispatched

    def _flush(self, now: float) -> None:
        """Dispatch the oldest ``<= max_batch`` pending queries as one
        GEMM batch."""
        if not self._pending or self._loop is None:
            return
        take = min(len(self._pending), self.config.max_batch)
        queries = self._pending[:take]
        del self._pending[:take]
        for item in queries:
            self.tenants.get(item.tenant_id).queue_depth -= 1
        # A deadline-triggered flush that was observed late (virtual
        # clock jumped past it) is billed at the deadline, not the
        # observation time, so queue-wait accounting stays exact.
        dispatch_s = min(now, min(q.deadline_s for q in queries))
        self._inflight_queries += take
        task = self._loop.create_task(self._run_batch(queries, dispatch_s))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)
        self._counters["batches_dispatched"] += 1

    async def _run_batch(
        self, queries: list[_PendingQuery], dispatch_s: float
    ) -> None:
        try:
            await self._execute_batch(queries, dispatch_s)
        finally:
            self._inflight_queries -= len(queries)

    async def _execute_batch(
        self, queries: list[_PendingQuery], dispatch_s: float
    ) -> None:
        batch = QueryBatch.build(
            np.stack([q.query for q in queries]),
            [q.compiled for q in queries],
            k=self.config.k,
            ef_search=self.config.ef_search,
        )
        assert self._loop is not None
        begin_s = self.clock.monotonic()
        try:
            outcome = await self._loop.run_in_executor(
                self._dispatch_pool, self.engine.search_batch, batch
            )
        except BaseException as exc:  # searcher bug: fail every rider fast
            for item in queries:
                if not item.future.done():
                    item.future.set_exception(exc)
            raise
        # Execution cost is the clock delta across the engine call:
        # real seconds under a SystemClock, and exactly the searcher's
        # own virtual sleeps (resilience backoff) under a FakeClock —
        # the inter-arrival jumps a virtual driver makes while a batch
        # is parked must not masquerade as service time.
        exec_ms = max(self.clock.monotonic() - begin_s, 0.0) * 1000.0
        for item, result, stats in zip(
            queries, outcome.results, outcome.stats
        ):
            wait_ms = max(dispatch_s - item.enqueued_s, 0.0) * 1000.0
            enriched = dataclasses.replace(
                stats,
                # The engine saw a pre-compiled mask (always a "hit");
                # the tenant-namespace lookup is the real cache verdict.
                predicate_cache_hit=item.cache_hit,
                queue_wait_ms=wait_ms,
                batch_size_served=len(queries),
                tenant_id=item.tenant_id,
            )
            tenant = self.tenants.get(item.tenant_id)
            if enriched.degraded:
                status = STATUS_DEGRADED
                tenant.degraded += 1
                self._counters["degraded"] += 1
            else:
                status = STATUS_OK
                tenant.ok += 1
                self._counters["ok"] += 1
            response = ServedResponse(
                tenant_id=item.tenant_id,
                status=status,
                result=result,
                stats=enriched,
                queue_wait_ms=wait_ms,
                latency_ms=wait_ms + exec_ms,
                batch_size_served=len(queries),
            )
            if not item.future.done():
                item.future.set_result(response)

    # ------------------------------------------------------------------
    # Virtual-clock drivers + lifecycle
    # ------------------------------------------------------------------

    async def pump(self) -> None:
        """Flush due deadlines, then wait for all in-flight batches.

        The virtual-clock counterpart of the realtime timers: drivers
        advance the :class:`~repro.utils.clock.FakeClock` and pump.
        Awaiting in-flight work here is what guarantees deterministic
        batch composition — the next arrival only sees a settled
        buffer.
        """
        self.poll()
        while self._inflight:
            await asyncio.gather(*list(self._inflight))

    async def drain(self) -> None:
        """Flush everything pending regardless of deadline and wait for
        completion.  Every admitted query's future resolves before this
        returns — the no-hang guarantee the fault suite pins."""
        while self._pending:
            self._flush(self.clock.monotonic())
        while self._inflight:
            await asyncio.gather(*list(self._inflight))

    async def aclose(self) -> None:
        """Stop admitting, drain in-flight work, release the pools."""
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        await self.drain()
        self._dispatch_pool.shutdown(wait=True)
        self.engine.close()

    async def __aenter__(self) -> "AcornService":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Queries currently parked in the coalescing buffer."""
        return len(self._pending)

    def summary(self) -> dict:
        """JSON-serializable service counters.

        ``offered == admitted + rejected`` always; after :meth:`drain`,
        ``ok + degraded + rejected == offered`` — the accounting
        invariant the bench validator enforces.
        """
        return {
            **self._counters,
            "pending": len(self._pending),
            "inflight": self._inflight_queries,
            "tenants": {
                t.tenant_id: t.counters() for t in self.tenants.known()
            },
        }

    def write_summary(self) -> dict:
        """JSON-serializable write-path counters.

        ``offered == applied + rejected`` always.  Kept separate from
        :meth:`summary` so the read-side accounting invariant stays
        exactly what the serving bench validator pins.
        """
        out = dict(self.write_counters)
        out["epoch"] = int(getattr(self.searcher, "current_epoch", 0))
        if self.compactor is not None:
            out["compactor"] = self.compactor.stats()
        return out
