"""Query-correlation measurement (paper §3.2.1).

The paper defines workload correlation as

    C(D, Q) = E_{(x,p) in Q} [ E_R[ g(x, R) ] - g(x, X_p) ]

where ``g(x, S) = min_{y in S} dist(x, y)``, and ``R`` is a random set
of ``|X_p|`` vectors drawn uniformly from the dataset — i.e. how much
closer (positive C) or farther (negative C) the true filtered targets
are compared to a hypothetical unclustered predicate.  This module
provides a Monte-Carlo estimator used by tests and the Figure 10 bench
to *verify* that the generated pos-/no-/neg-correlation workloads
actually have the correlation their names claim.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import HybridDataset
from repro.utils.rng import default_rng
from repro.vectors.distance import pairwise_distances


def _k_nearest_sum(dists: np.ndarray, k: int) -> float:
    """Sum of the k smallest entries (all of them when fewer exist)."""
    take = min(k, dists.shape[0])
    if take == dists.shape[0]:
        return float(dists.sum())
    return float(np.partition(dists, take - 1)[:take].sum())


def query_correlation(
    dataset: HybridDataset,
    n_resamples: int = 10,
    max_queries: int | None = None,
    k: int = 1,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Monte-Carlo estimate of C(D, Q) for a dataset's workload.

    Args:
        dataset: the hybrid dataset whose workload is measured.
        n_resamples: uniform resamples per query for the E_R term.
        max_queries: optionally cap the number of queries measured.
        k: number of hybrid-search targets per query.  k=1 is the
            paper's definition; k>1 sums distances over the K targets,
            the extension §3.2.1 notes.
        seed: RNG seed for the resamples.

    Returns:
        The estimated correlation; positive values mean filtered targets
        sit closer to their queries than chance, negative means farther.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    rng = default_rng(seed)
    n = dataset.num_vectors
    queries = dataset.queries
    compiled = dataset.compiled_predicates()
    if max_queries is not None:
        queries = queries[:max_queries]
        compiled = compiled[:max_queries]

    contributions: list[float] = []
    for query, predicate in zip(queries, compiled):
        cardinality = predicate.cardinality
        if cardinality == 0:
            continue
        dists = pairwise_distances(dataset.vectors, query.vector,
                                   metric=dataset.metric)[0]
        true_value = _k_nearest_sum(dists[predicate.passing_ids], k)
        resample_values = [
            _k_nearest_sum(
                dists[rng.choice(n, size=cardinality, replace=False)], k
            )
            for _ in range(n_resamples)
        ]
        contributions.append(float(np.mean(resample_values)) - true_value)
    if not contributions:
        raise ValueError("no query with a non-empty predicate to measure")
    return float(np.mean(contributions))


def point_correlation(
    vectors: np.ndarray,
    query: np.ndarray,
    passing_ids: np.ndarray,
    n_samples: int = 32,
    seed: int | np.random.Generator | None = 0,
    metric: str = "l2",
) -> float:
    """Cheap per-query correlation proxy for the routing cost model.

    The workload-level C(D, Q) above is too expensive to evaluate per
    query at plan time; this proxy compares the nearest of a small
    evenly-spaced sample of *passing* vectors against the nearest of a
    uniform sample of *all* vectors, normalized into [-1, 1]:

        (d_random - d_passing) / max(d_random, d_passing)

    Positive values mean the predicate's passing set sits closer to the
    query than chance (positively correlated), negative means farther
    (anti-correlated — the regime where graph walks and post-filtering
    degrade; §3.2.1 / Figure 10).  The passing sample is taken at
    evenly-spaced ranks of ``passing_ids`` and only the uniform sample
    consumes RNG, so for a fixed seed the signal is deterministic.

    Costs ``O(n_samples)`` distance evaluations outside the search
    path's distance tally (planning overhead, like selectivity
    estimation).
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    passing_ids = np.asarray(passing_ids)
    n = vectors.shape[0]
    if n == 0 or passing_ids.size == 0:
        return 0.0
    rng = default_rng(seed)
    take = min(n_samples, int(passing_ids.size))
    ranks = np.linspace(0, passing_ids.size - 1, take).astype(np.intp)
    passing_sample = passing_ids[ranks]
    random_sample = rng.choice(n, size=min(n_samples, n), replace=False)
    d_passing = float(
        pairwise_distances(vectors[passing_sample], query, metric=metric).min()
    )
    d_random = float(
        pairwise_distances(vectors[random_sample], query, metric=metric).min()
    )
    denom = max(d_passing, d_random)
    if denom <= 0.0:
        return 0.0
    return float(np.clip((d_random - d_passing) / denom, -1.0, 1.0))
