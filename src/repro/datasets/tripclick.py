"""TripClick-like benchmark (HCPS).

The paper's TripClick setup (§7.1.2): ~1M 768-d passage embeddings from
a health search engine, each passage tagged with a list of clinical
areas (28 unique) and a publication year (1900-2020); real query logs
filter on either clinical areas (``contains``, avg selectivity ≈ .17)
or date ranges (``between``, avg selectivity ≈ .26), giving a predicate
set larger than 2^28.

Substitutions: DPR passage embeddings → clustered Gaussians (passages
cluster by topic); real click-log filters → sampled filters matching the
published operator mix and selectivity spread.  Clinical areas are
assigned with per-cluster skew, so area predicates exhibit *predicate
clustering* — the property that makes this workload hard for
post-filtering.  Dimensionality defaults to 160 (paper: 768), scaled
with everything else.
"""

from __future__ import annotations

import numpy as np

from repro.attributes.table import AttributeTable
from repro.datasets.base import HybridDataset, HybridQuery
from repro.datasets.synthetic import clustered_vectors, sample_queries_near_data
from repro.predicates.compare import Between
from repro.predicates.contains import ContainsAny
from repro.utils.rng import spawn_rngs

AREAS_COLUMN = "areas"
YEAR_COLUMN = "year"
YEAR_MIN, YEAR_MAX = 1900, 2020

CLINICAL_AREAS = [
    "cardiology", "oncology", "neurology", "surgery", "pediatrics",
    "psychiatry", "radiology", "infectious_disease", "endocrinology",
    "gastroenterology", "pulmonology", "nephrology", "rheumatology",
    "dermatology", "hematology", "urology", "ophthalmology",
    "orthopedics", "anesthesiology", "emergency_medicine", "geriatrics",
    "obstetrics", "immunology", "pathology", "pharmacology",
    "public_health", "primary_care", "critical_care",
]


def _area_affinities(n_clusters: int, rng: np.random.Generator) -> np.ndarray:
    """Per-cluster sampling weights over the 28 areas.

    Global popularity is Zipf-shaped (a few areas dominate the corpus,
    as in the real dataset) and each topical cluster boosts a handful of
    "home" areas, producing predicate clustering.
    """
    n_areas = len(CLINICAL_AREAS)
    global_popularity = 1.0 / np.arange(1, n_areas + 1)
    weights = np.tile(global_popularity, (n_clusters, 1))
    boost = rng.gamma(shape=0.5, scale=8.0, size=(n_clusters, n_areas))
    weights = weights * (1.0 + boost)
    return weights / weights.sum(axis=1, keepdims=True)


def _sample_years(n: int, rng: np.random.Generator) -> np.ndarray:
    """Publication years, 1900-2020, skewed toward recent decades."""
    age = np.minimum(
        rng.exponential(scale=18.0, size=n), YEAR_MAX - YEAR_MIN
    ).astype(np.int64)
    return YEAR_MAX - age


def make_tripclick_like(
    n: int = 4000,
    dim: int = 160,
    n_queries: int = 100,
    workload: str = "areas",
    n_clusters: int = 28,
    cluster_std: float = 0.7,
    seed: int | None = 2,
    name: str | None = None,
) -> HybridDataset:
    """Generate a TripClick-shaped hybrid benchmark.

    Args:
        n: base dataset size (paper: 1,055,976).
        dim: vector dimensionality (paper: 768).
        n_queries: workload size (paper: 1,000 per workload).
        workload: ``"areas"`` (clinical-area ``contains`` filters) or
            ``"dates"`` (publication-year ``between`` filters).
        n_clusters: topical mixture components.
        seed: determinism seed.
        name: dataset name; defaults to ``tripclick-like/<workload>``.
    """
    if workload not in ("areas", "dates"):
        raise ValueError(f"workload must be 'areas' or 'dates', got {workload!r}")
    rng_vec, rng_attr, rng_query = spawn_rngs(seed, 3)

    vectors, assignments, _ = clustered_vectors(
        n, dim, n_clusters=n_clusters, cluster_std=cluster_std, seed=rng_vec
    )
    affinities = _area_affinities(n_clusters, rng_attr)
    n_areas_per_doc = rng_attr.choice([1, 2, 3], size=n, p=[0.5, 0.3, 0.2])
    area_lists: list[list[str]] = []
    for doc in range(n):
        chosen = rng_attr.choice(
            len(CLINICAL_AREAS),
            size=n_areas_per_doc[doc],
            replace=False,
            p=affinities[assignments[doc]],
        )
        area_lists.append([CLINICAL_AREAS[a] for a in chosen])
    years = _sample_years(n, rng_attr)

    table = AttributeTable(n)
    table.add_keywords_column(AREAS_COLUMN, area_lists)
    table.add_int_column(YEAR_COLUMN, years)

    query_vectors, sources = sample_queries_near_data(
        vectors, n_queries, seed=rng_query
    )
    queries: list[HybridQuery] = []
    for qv, src in zip(query_vectors, sources):
        if workload == "areas":
            predicate = _sample_area_predicate(area_lists[src], rng_query)
        else:
            predicate = _sample_date_predicate(rng_query)
        queries.append(HybridQuery(vector=qv, predicate=predicate))

    return HybridDataset(
        name=name if name is not None else f"tripclick-like/{workload}",
        vectors=vectors,
        table=table,
        queries=queries,
        extras={
            "workload": workload,
            "areas_column": AREAS_COLUMN,
            "year_column": YEAR_COLUMN,
            "cluster_assignments": assignments,
            "predicate_cardinality": 2 ** len(CLINICAL_AREAS),
        },
    )


def _sample_area_predicate(
    source_areas: list[str], rng: np.random.Generator
) -> ContainsAny:
    """A clinical-area filter, seeded from the query's source document.

    Real click-log filters name areas relevant to the query text, so at
    least one filter area comes from the source document (mirroring the
    mild positive correlation of the real workload), with up to two
    extra popular areas widening the disjunction.
    """
    areas = [source_areas[rng.integers(len(source_areas))]]
    n_extra = int(rng.choice([0, 1, 2], p=[0.5, 0.3, 0.2]))
    for _ in range(n_extra):
        extra = CLINICAL_AREAS[int(rng.zipf(1.6)) % len(CLINICAL_AREAS)]
        if extra not in areas:
            areas.append(extra)
    return ContainsAny(AREAS_COLUMN, areas)


def _sample_date_predicate(rng: np.random.Generator) -> Between:
    """A publication-year range with a widely varying span.

    Spans are exponential (a few years up to many decades), producing
    the broad selectivity spread Figure 9 sweeps over.
    """
    high = int(YEAR_MAX - min(rng.exponential(scale=10.0), 100.0))
    span = int(min(1.0 + rng.exponential(scale=20.0), 110.0))
    low = max(YEAR_MIN, high - span)
    return Between(YEAR_COLUMN, low, high)
