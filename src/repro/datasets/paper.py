"""Paper-dataset-like benchmark (LCPS).

The paper's "Paper" dataset (§7.1.1): ~2M 200-d passage embeddings from
an academic-paper corpus, with the same random-integer / equality
predicate protocol as SIFT1M.  The surrogate differs from
``make_sift1m_like`` only in its default dimensionality and slightly
different cluster geometry (passage embeddings cluster more tightly by
topic than SIFT descriptors do by scene).
"""

from __future__ import annotations

from repro.datasets.base import HybridDataset
from repro.datasets.sift import make_sift1m_like


def make_paper_like(
    n: int = 8000,
    dim: int = 200,
    n_queries: int = 200,
    n_labels: int = 12,
    n_clusters: int = 40,
    cluster_std: float = 1.0,
    seed: int | None = 1,
    name: str = "paper-like",
) -> HybridDataset:
    """Generate a Paper-shaped hybrid benchmark (200-d, 12 labels)."""
    return make_sift1m_like(
        n=n,
        dim=dim,
        n_queries=n_queries,
        n_labels=n_labels,
        n_clusters=n_clusters,
        cluster_std=cluster_std,
        seed=seed,
        name=name,
    )
