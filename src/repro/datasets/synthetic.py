"""Low-level synthetic vector generators.

Real embedding corpora are strongly clustered (images of similar scenes,
passages on similar topics embed nearby), and predicate clustering —
the phenomenon behind query correlation (paper §3.2.1, Figure 2) —
only exists on clustered data.  All dataset surrogates therefore build
on a Gaussian-mixture generator with controllable cluster count and
spread; a uniform generator exists for the no-structure case.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import default_rng


def clustered_vectors(
    n: int,
    dim: int,
    n_clusters: int = 16,
    cluster_std: float = 0.35,
    center_scale: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gaussian-mixture vectors.

    Args:
        n: number of vectors.
        dim: dimensionality.
        n_clusters: mixture components.
        cluster_std: intra-cluster standard deviation; smaller values
            give stronger predicate clustering when attributes follow
            clusters.
        center_scale: standard deviation of the component centers.
        seed: RNG seed.

    Returns:
        (vectors, assignments, centers): float32 (n, dim) matrix, the
        component id of each vector, and the (n_clusters, dim) centers.
    """
    if n <= 0 or dim <= 0 or n_clusters <= 0:
        raise ValueError("n, dim and n_clusters must all be positive")
    rng = default_rng(seed)
    centers = rng.standard_normal((n_clusters, dim)).astype(np.float32) * center_scale
    assignments = rng.integers(0, n_clusters, size=n)
    noise = rng.standard_normal((n, dim)).astype(np.float32) * cluster_std
    vectors = centers[assignments] + noise
    return vectors.astype(np.float32), assignments, centers


def uniform_vectors(
    n: int,
    dim: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Isotropic Gaussian vectors (no cluster structure)."""
    if n <= 0 or dim <= 0:
        raise ValueError("n and dim must be positive")
    rng = default_rng(seed)
    return rng.standard_normal((n, dim)).astype(np.float32)


def sample_queries_near_data(
    vectors: np.ndarray,
    n_queries: int,
    jitter: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Query vectors drawn as jittered copies of random base points.

    Mirrors how benchmark query sets are drawn from the same
    distribution as the base data (SIFT1M's query file, the paper's
    LAION protocol of sampling 1K dataset vectors).

    Returns:
        (queries, source_ids): the query matrix and the base ids they
        were perturbed from (useful for correlation control).
    """
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    rng = default_rng(seed)
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
    source = rng.integers(0, vectors.shape[0], size=n_queries)
    noise = rng.standard_normal((n_queries, vectors.shape[1])).astype(np.float32)
    return vectors[source] + jitter * noise, source
