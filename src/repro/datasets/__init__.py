"""Synthetic surrogates for the paper's four evaluation datasets.

The paper evaluates on SIFT1M, Paper, TripClick, and LAION (Table 2).
Those corpora need downloads and GPU encoders, so this package generates
laptop-scale datasets that preserve the *workload structure* the
evaluation sweeps: predicate operators and cardinality, average
selectivity, predicate clustering, and query correlation.  Every
generator is deterministic given a seed and returns a
:class:`HybridDataset` bundling vectors, attributes, a query workload,
and exact ground truth.

Substitution rationale is documented per-generator and in DESIGN.md §3.
"""

from repro.datasets.base import HybridDataset, HybridQuery
from repro.datasets.correlation import query_correlation
from repro.datasets.ground_truth import filtered_knn
from repro.datasets.io import load_sift1m, read_bvecs, read_fvecs, read_ivecs, write_fvecs
from repro.datasets.laion import make_laion_like
from repro.datasets.paper import make_paper_like
from repro.datasets.sift import make_sift1m_like
from repro.datasets.synthetic import clustered_vectors, uniform_vectors
from repro.datasets.tripclick import make_tripclick_like

__all__ = [
    "HybridDataset",
    "HybridQuery",
    "clustered_vectors",
    "filtered_knn",
    "load_sift1m",
    "make_laion_like",
    "make_paper_like",
    "make_sift1m_like",
    "make_tripclick_like",
    "query_correlation",
    "read_bvecs",
    "read_fvecs",
    "read_ivecs",
    "uniform_vectors",
    "write_fvecs",
]
