"""Exact filtered K-nearest-neighbor ground truth.

Recall@K (paper §3.1) is measured against the true K nearest neighbors
*that pass the predicate*; this module computes them by brute force,
batched in numpy so even the largest laptop-scale configurations stay
fast.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.vectors.distance import Metric, pairwise_distances


def filtered_knn(
    vectors: np.ndarray,
    query_vectors: Sequence[np.ndarray],
    masks: Sequence[np.ndarray],
    k: int,
    metric: "Metric | str" = Metric.L2,
    batch: int = 64,
) -> list[np.ndarray]:
    """Per-query exact hybrid answers.

    Args:
        vectors: base matrix (n, d).
        query_vectors: one vector per query.
        masks: one boolean pass/fail mask per query.
        k: neighbors per query (results may be shorter when fewer pass).
        metric: distance metric.
        batch: queries per distance-matrix block.

    Returns:
        A list of id arrays, ascending true distance, one per query.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if len(query_vectors) != len(masks):
        raise ValueError(
            f"{len(query_vectors)} query vectors but {len(masks)} masks"
        )
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
    out: list[np.ndarray] = []
    for lo in range(0, len(query_vectors), batch):
        hi = min(lo + batch, len(query_vectors))
        block = np.stack([np.asarray(q, dtype=np.float32) for q in query_vectors[lo:hi]])
        dists = pairwise_distances(vectors, block, metric=metric)
        for row, mask in zip(dists, masks[lo:hi]):
            passing = np.flatnonzero(mask)
            if passing.size == 0:
                out.append(np.empty(0, dtype=np.intp))
                continue
            local = row[passing]
            take = min(k, passing.size)
            order = np.argpartition(local, take - 1)[:take]
            order = order[np.argsort(local[order])]
            out.append(passing[order].astype(np.intp))
    return out
