"""SIFT1M-like benchmark (LCPS).

The paper's SIFT1M setup (§7.1.1): 128-d image descriptors, a uniform
random integer attribute in 1..12 per base vector, and equality
predicates over that attribute (predicate-set cardinality 12, average
selectivity 1/12 ≈ 0.083).

Substitution: real SIFT descriptors → clustered Gaussian vectors at
configurable scale.  Attributes remain uniform-random and *independent*
of vector position, exactly as in the paper's protocol, so there is no
predicate clustering and query correlation is ≈ 0 — the regime the LCPS
benchmarks probe.
"""

from __future__ import annotations


from repro.attributes.table import AttributeTable
from repro.datasets.base import HybridDataset, HybridQuery
from repro.datasets.synthetic import clustered_vectors, sample_queries_near_data
from repro.predicates.compare import Equals
from repro.utils.rng import spawn_rngs

LABEL_COLUMN = "label"


def make_sift1m_like(
    n: int = 8000,
    dim: int = 128,
    n_queries: int = 200,
    n_labels: int = 12,
    n_clusters: int = 24,
    cluster_std: float = 1.1,
    seed: int | None = 0,
    name: str = "sift1m-like",
) -> HybridDataset:
    """Generate a SIFT1M-shaped hybrid benchmark.

    Args:
        n: base dataset size (paper: 1,000,000).
        dim: vector dimensionality (paper: 128).
        n_queries: workload size (paper: 10,000).
        n_labels: attribute domain size / predicate cardinality
            (paper: 12).
        n_clusters: Gaussian-mixture components for the vector surrogate.
        cluster_std: intra-cluster spread.  The default (1.1, against
            unit-scale centers) gives soft, overlapping clusters like
            real descriptor data; much tighter values create separable
            islands no real embedding corpus exhibits.
        seed: determinism seed.
        name: dataset name in benchmark output.
    """
    rng_vec, rng_attr, rng_query = spawn_rngs(seed, 3)
    vectors, assignments, _ = clustered_vectors(
        n, dim, n_clusters=n_clusters, cluster_std=cluster_std, seed=rng_vec
    )
    labels = rng_attr.integers(1, n_labels + 1, size=n)
    table = AttributeTable(n)
    table.add_int_column(LABEL_COLUMN, labels)

    query_vectors, _ = sample_queries_near_data(vectors, n_queries, seed=rng_query)
    query_labels = rng_query.integers(1, n_labels + 1, size=n_queries)
    queries = [
        HybridQuery(vector=qv, predicate=Equals(LABEL_COLUMN, int(lab)))
        for qv, lab in zip(query_vectors, query_labels)
    ]
    return HybridDataset(
        name=name,
        vectors=vectors,
        table=table,
        queries=queries,
        extras={
            "label_column": LABEL_COLUMN,
            "n_labels": n_labels,
            "predicate_cardinality": n_labels,
            "cluster_assignments": assignments,
        },
    )
