"""LAION-like benchmark (HCPS) with controllable query correlation.

The paper's LAION setup (§7.1.2): CLIP image embeddings with two
structured attributes — a text caption (served by regex predicates) and
a keyword list built by taking each image's 3 highest CLIP-scoring
words from a 30-word candidate list.  Because CLIP scores reflect image
content, keyword lists are *correlated with embedding geometry*, which
is what lets the paper construct positive-, negative-, and
no-correlation workloads from the same base data.

Substitutions: CLIP embeddings → clustered Gaussians; CLIP text-image
scores → affinity between a point and per-keyword anchor vectors (each
keyword anchored near a mixture component), so each point's keyword
list is its 3 nearest anchors — the same geometry-coupled assignment.
Captions are synthesized from the keywords plus filler vocabulary so
regex predicates have content to match.  Dimensionality defaults to 128
(paper: 512).

Workloads (``workload=`` argument):
    ``no-cor``   keyword filters drawn independently of the query point.
    ``pos-cor``  keyword filters drawn from the query point's own list.
    ``neg-cor``  keyword filters drawn from the query point's *worst*
                 keywords (targets provably far from the query).
    ``regex``    regex filters over the synthesized captions.
"""

from __future__ import annotations

import numpy as np

from repro.attributes.table import AttributeTable
from repro.datasets.base import HybridDataset, HybridQuery
from repro.datasets.synthetic import clustered_vectors, sample_queries_near_data
from repro.predicates.contains import ContainsAny
from repro.predicates.regex import RegexMatch
from repro.utils.rng import spawn_rngs

CAPTION_COLUMN = "caption"
KEYWORDS_COLUMN = "keywords"
KEYWORDS_PER_IMAGE = 3

# Keywords split by how they attach to image content.  "Generic"
# keywords ("colorful", "bright", ...) describe style and appear roughly
# uniformly across embedding space; "geometric" keywords ("ocean",
# "forest", ...) describe content and concentrate where that content
# embeds.  The no-correlation workload filters on generic keywords
# (X_p ~ uniform, so C ≈ 0); pos-/neg-correlation filter on geometric
# ones, where affinity to the query point controls the sign.
GENERIC_KEYWORDS = [
    "colorful", "dark", "bright", "vintage", "abstract", "art",
    "tiny", "scary", "crowd", "portrait",
]
GEOMETRIC_KEYWORDS = [
    "animal", "green", "landscape", "urban", "ocean", "forest",
    "sunset", "food", "vehicle", "sports", "music", "child", "flower",
    "mountain", "night", "winter", "summer", "building", "water", "sky",
]
CANDIDATE_KEYWORDS = GENERIC_KEYWORDS + GEOMETRIC_KEYWORDS

FILLER_VOCAB = [
    "with", "under", "beside", "featuring", "near", "during", "holding",
    "above", "against", "toward", "vivid", "classic", "blurred", "sharp",
    "grainy", "wide", "closeup", "aerial", "retro", "modern",
]

WORKLOADS = ("no-cor", "pos-cor", "neg-cor", "regex")


def _keyword_anchors(
    centers: np.ndarray, n_keywords: int, rng: np.random.Generator
) -> np.ndarray:
    """Anchor each keyword near a mixture component (with jitter).

    Keywords cycle through the components so each region of the space
    "means" a few keywords — the analog of CLIP scoring semantically
    coherent regions highly for related words.
    """
    n_clusters, dim = centers.shape
    anchors = np.empty((n_keywords, dim), dtype=np.float32)
    for kw in range(n_keywords):
        center = centers[kw % n_clusters]
        anchors[kw] = center + 0.3 * rng.standard_normal(dim).astype(np.float32)
    return anchors


def _keyword_scores(vectors: np.ndarray, anchors: np.ndarray) -> np.ndarray:
    """(n, n_keywords) affinity: negative squared distance to anchors,
    standardized per point so downstream temperatures are dim-free."""
    v_sq = np.einsum("ij,ij->i", vectors, vectors)
    a_sq = np.einsum("ij,ij->i", anchors, anchors)
    cross = vectors @ anchors.T
    scores = -(v_sq[:, None] + a_sq[None, :] - 2.0 * cross)
    mean = scores.mean(axis=1, keepdims=True)
    std = np.maximum(scores.std(axis=1, keepdims=True), 1e-6)
    return (scores - mean) / std


def _sample_keyword_lists(
    scores: np.ndarray,
    temperature: float,
    rng: np.random.Generator,
) -> list[list[int]]:
    """Sample each point's keyword list: 1 generic + 2 geometric.

    The generic slot is uniform over :data:`GENERIC_KEYWORDS`
    (selectivity ≈ 1/|generic| each, independent of geometry, so
    filtering on one has C ≈ 0).  The two geometric slots are drawn
    ∝ softmax(affinity / temperature) over :data:`GEOMETRIC_KEYWORDS`,
    keeping them content-coupled without the knife-edge determinism of
    a hard top-k (real CLIP keywords have density peaks, not disjoint
    territories).

    Args:
        scores: standardized (n, |geometric|) affinity matrix.
        temperature: softmax temperature in standardized-score units.
        rng: sampling stream.

    Returns:
        Per-point keyword-id lists, ids indexing CANDIDATE_KEYWORDS.
    """
    n, n_geometric = scores.shape
    n_generic = len(GENERIC_KEYWORDS)
    logits = scores / temperature
    probs = np.exp(logits - logits.max(axis=1, keepdims=True))
    probs /= probs.sum(axis=1, keepdims=True)
    lists: list[list[int]] = []
    for i in range(n):
        generic = int(rng.integers(0, n_generic))
        p = probs[i] / probs[i].sum()  # counter float32 rounding drift
        geometric = rng.choice(n_geometric, size=2, replace=False, p=p)
        lists.append([generic] + [n_generic + int(g) for g in geometric])
    return lists


def _make_caption(keywords: list[str], rng: np.random.Generator) -> str:
    fillers = rng.choice(FILLER_VOCAB, size=2, replace=False)
    serial = rng.integers(0, 100)
    return (
        f"a photo of {keywords[0]} {fillers[0]} {keywords[1]} "
        f"{fillers[1]} {keywords[2]} no {serial}"
    )


def make_laion_like(
    n: int = 4000,
    dim: int = 128,
    n_queries: int = 100,
    workload: str = "no-cor",
    n_clusters: int = 30,
    cluster_std: float = 0.7,
    keyword_temperature: float = 1.0,
    seed: int | None = 3,
    name: str | None = None,
) -> HybridDataset:
    """Generate a LAION-shaped hybrid benchmark.

    Args:
        n: base dataset size (paper: 1M / 25M subsets).
        dim: vector dimensionality (paper: 512).
        n_queries: workload size (paper: 1,000).
        workload: one of ``no-cor``, ``pos-cor``, ``neg-cor``, ``regex``.
        n_clusters: mixture components (also anchors the 30 keywords).
        keyword_temperature: softmax temperature of the geometric
            keyword assignment (standardized-score units); lower values
            make those keywords more tightly geometric.
        seed: determinism seed.
        name: dataset name; defaults to ``laion-like/<workload>``.
    """
    if workload not in WORKLOADS:
        raise ValueError(f"workload must be one of {WORKLOADS}, got {workload!r}")
    rng_vec, rng_attr, rng_query = spawn_rngs(seed, 3)

    vectors, assignments, centers = clustered_vectors(
        n, dim, n_clusters=n_clusters, cluster_std=cluster_std, seed=rng_vec
    )
    anchors = _keyword_anchors(centers, len(GEOMETRIC_KEYWORDS), rng_attr)
    scores = _keyword_scores(vectors, anchors)
    keyword_ids = _sample_keyword_lists(scores, keyword_temperature, rng_attr)
    keyword_lists = [[CANDIDATE_KEYWORDS[kw] for kw in row] for row in keyword_ids]
    captions = [_make_caption(kws, rng_attr) for kws in keyword_lists]

    table = AttributeTable(n)
    table.add_keywords_column(KEYWORDS_COLUMN, keyword_lists)
    table.add_string_column(CAPTION_COLUMN, captions)

    query_vectors, sources = sample_queries_near_data(
        vectors, n_queries, seed=rng_query
    )
    queries: list[HybridQuery] = []
    for qv, src in zip(query_vectors, sources):
        if workload == "regex":
            predicate = _sample_regex_predicate(rng_query)
        else:
            predicate = _sample_keyword_predicate(
                workload, scores[src], keyword_ids[src], rng_query
            )
        queries.append(HybridQuery(vector=qv, predicate=predicate))

    return HybridDataset(
        name=name if name is not None else f"laion-like/{workload}",
        vectors=vectors,
        table=table,
        queries=queries,
        extras={
            "workload": workload,
            "keywords_column": KEYWORDS_COLUMN,
            "caption_column": CAPTION_COLUMN,
            "cluster_assignments": assignments,
            "keyword_anchors": anchors,
            "predicate_cardinality": 2 ** len(CANDIDATE_KEYWORDS) * 100,
        },
    )


def _sample_keyword_predicate(
    workload: str,
    source_scores: np.ndarray,
    source_keywords: list[int],
    rng: np.random.Generator,
) -> ContainsAny:
    """Pick the filter keyword by its relation to the query point.

    pos-cor takes one of the query's source image's own *geometric*
    keywords (guaranteeing nearby targets); neg-cor takes one of the
    three lowest-affinity geometric keywords at the query point
    (targets concentrated far away); no-cor takes a uniformly random
    *generic* keyword, whose member set is uniform over the space.
    """
    n_generic = len(GENERIC_KEYWORDS)
    if workload == "pos-cor":
        geometric = [kw for kw in source_keywords if kw >= n_generic]
        kw = geometric[rng.integers(0, len(geometric))]
    elif workload == "neg-cor":
        order = np.argsort(source_scores)
        worst = [
            n_generic + int(g)
            for g in order
            if n_generic + int(g) not in source_keywords
        ]
        kw = worst[rng.integers(0, KEYWORDS_PER_IMAGE)]
    else:
        kw = rng.integers(0, n_generic)
    return ContainsAny(KEYWORDS_COLUMN, [CANDIDATE_KEYWORDS[int(kw)]])


def _sample_regex_predicate(rng: np.random.Generator) -> RegexMatch:
    """A caption regex of 2-10 tokens with varied selectivity.

    Pattern families mirror the paper's random token strings: word
    anchors, digit classes, and alternations over the keyword and filler
    vocabularies.
    """
    family = rng.integers(0, 4)
    if family == 0:
        word = CANDIDATE_KEYWORDS[rng.integers(0, len(CANDIDATE_KEYWORDS))]
        return RegexMatch(CAPTION_COLUMN, rf"\b{word}\b")
    if family == 1:
        word = FILLER_VOCAB[rng.integers(0, len(FILLER_VOCAB))]
        return RegexMatch(CAPTION_COLUMN, rf"of \w+ {word}")
    if family == 2:
        digit = rng.integers(0, 10)
        return RegexMatch(CAPTION_COLUMN, rf"no {digit}[0-9]?$")
    first = CANDIDATE_KEYWORDS[rng.integers(0, len(CANDIDATE_KEYWORDS))]
    second = CANDIDATE_KEYWORDS[rng.integers(0, len(CANDIDATE_KEYWORDS))]
    return RegexMatch(CAPTION_COLUMN, rf"photo of ({first}|{second})")
