"""Dataset containers: vectors + attributes + hybrid query workload."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.attributes.table import AttributeTable
from repro.datasets.ground_truth import filtered_knn
from repro.predicates.base import CompiledPredicate, Predicate
from repro.vectors.distance import Metric, resolve_metric


@dataclasses.dataclass
class HybridQuery:
    """One hybrid query ``q = (x_q, p_q)`` (paper §3.1)."""

    vector: np.ndarray
    predicate: Predicate

    def compile(self, table: AttributeTable) -> CompiledPredicate:
        """Materialize the predicate against ``table``."""
        return self.predicate.compile(table)


@dataclasses.dataclass
class HybridDataset:
    """A hybrid-search benchmark: base data plus a query workload.

    Attributes:
        name: dataset identifier used in benchmark output.
        vectors: base matrix (n, d), float32.
        table: structured attributes aligned with ``vectors``.
        queries: the hybrid query workload.
        metric: distance metric the workload assumes.
        extras: generator-specific metadata (e.g. the label column name
            for LCPS datasets, cluster assignments for correlation
            control).
    """

    name: str
    vectors: np.ndarray
    table: AttributeTable
    queries: list[HybridQuery]
    metric: Metric = Metric.L2
    extras: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.vectors = np.atleast_2d(np.asarray(self.vectors, dtype=np.float32))
        self.metric = resolve_metric(self.metric)
        if len(self.table) != self.vectors.shape[0]:
            raise ValueError(
                f"table has {len(self.table)} rows but vectors has "
                f"{self.vectors.shape[0]}"
            )
        self._compiled: list[CompiledPredicate] | None = None
        self._ground_truth: dict[int, list[np.ndarray]] = {}

    @property
    def num_vectors(self) -> int:
        """Dataset size n."""
        return self.vectors.shape[0]

    @property
    def dim(self) -> int:
        """Vector dimensionality d."""
        return self.vectors.shape[1]

    def compiled_predicates(self) -> list[CompiledPredicate]:
        """Each query's predicate compiled against the table (cached)."""
        if self._compiled is None:
            self._compiled = [q.predicate.compile(self.table) for q in self.queries]
        return self._compiled

    def selectivities(self) -> np.ndarray:
        """Exact selectivity of every query predicate."""
        return np.asarray([c.selectivity for c in self.compiled_predicates()])

    def ground_truth(self, k: int) -> list[np.ndarray]:
        """Exact hybrid-search answers: per-query id arrays (cached).

        Entries may be shorter than ``k`` when fewer than ``k`` entities
        pass the predicate.
        """
        if k not in self._ground_truth:
            self._ground_truth[k] = filtered_knn(
                self.vectors,
                [q.vector for q in self.queries],
                [c.mask for c in self.compiled_predicates()],
                k,
                metric=self.metric,
            )
        return self._ground_truth[k]

    def subset_queries(self, indices) -> "HybridDataset":
        """A view of this dataset with a query-workload subset."""
        indices = list(indices)
        return HybridDataset(
            name=self.name,
            vectors=self.vectors,
            table=self.table,
            queries=[self.queries[i] for i in indices],
            metric=self.metric,
            extras=dict(self.extras),
        )
