"""Readers for the real benchmark datasets' file formats.

The surrogates in this package exist because the real corpora cannot
ship in-repo — but a user who *has* them should be able to run the real
thing.  This module parses the standard ANN-benchmark container
formats:

- ``.fvecs`` — float32 vectors, each record ``[int32 dim][dim × f32]``
  (SIFT1M's base/query files, TEXMEX distribution).
- ``.ivecs`` — int32 vectors, same framing (SIFT1M ground truth).
- ``.bvecs`` — uint8 vectors, ``[int32 dim][dim × u8]`` (SIFT1B).

Plus :func:`load_sift1m`, which assembles a :class:`HybridDataset` from
a TEXMEX-layout directory using the paper's attribute protocol (random
integers 1-12, equality predicates) so results are directly comparable
with the surrogate benchmarks.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.attributes.table import AttributeTable
from repro.datasets.base import HybridDataset, HybridQuery
from repro.predicates.compare import Equals
from repro.utils.rng import default_rng


def _read_vecs(path, scalar: np.dtype, scalar_size: int) -> np.ndarray:
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(
            f"{path} not found — download the TEXMEX distribution "
            "(http://corpus-texmex.irisa.fr/) and point at its files"
        )
    raw = np.fromfile(path, dtype=np.uint8)
    if raw.size == 0:
        return np.empty((0, 0), dtype=scalar)
    dim = int(np.frombuffer(raw[:4].tobytes(), dtype=np.int32)[0])
    if dim <= 0:
        raise ValueError(f"{path}: invalid leading dimension {dim}")
    record = 4 + dim * scalar_size
    if raw.size % record != 0:
        raise ValueError(
            f"{path}: size {raw.size} is not a multiple of the record "
            f"size {record} (dim={dim})"
        )
    count = raw.size // record
    body = raw.reshape(count, record)[:, 4:]
    vectors = np.frombuffer(body.tobytes(), dtype=scalar).reshape(count, dim)
    return np.ascontiguousarray(vectors)


def read_fvecs(path) -> np.ndarray:
    """Read an ``.fvecs`` file into a float32 (n, d) matrix."""
    return _read_vecs(path, np.dtype(np.float32), 4)


def read_ivecs(path) -> np.ndarray:
    """Read an ``.ivecs`` file into an int32 (n, d) matrix."""
    return _read_vecs(path, np.dtype(np.int32), 4)


def read_bvecs(path) -> np.ndarray:
    """Read a ``.bvecs`` file into a uint8 (n, d) matrix."""
    return _read_vecs(path, np.dtype(np.uint8), 1)


def write_fvecs(path, vectors: np.ndarray) -> None:
    """Write a float32 (n, d) matrix as ``.fvecs`` (tests, exports)."""
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
    n, dim = vectors.shape
    framed = np.empty((n, 1 + dim), dtype=np.float32)
    framed[:, 0] = np.frombuffer(
        np.full(n, dim, dtype=np.int32).tobytes(), dtype=np.float32
    )
    framed[:, 1:] = vectors
    framed.tofile(Path(path))


def load_sift1m(
    directory,
    n_labels: int = 12,
    max_base: int | None = None,
    max_queries: int | None = None,
    seed: int | None = 0,
) -> HybridDataset:
    """Assemble the paper's SIFT1M benchmark from a TEXMEX directory.

    Expects ``sift_base.fvecs`` and ``sift_query.fvecs`` under
    ``directory``.  Attributes and predicates follow the paper's §7.1.1
    protocol exactly: uniform random integers 1..n_labels per base
    vector, a random equality predicate per query.

    Args:
        directory: folder holding the TEXMEX files.
        n_labels: attribute domain size (paper: 12).
        max_base / max_queries: optional truncation for quick runs.
        seed: determinism seed for the attribute/predicate assignment.
    """
    directory = Path(directory)
    base = read_fvecs(directory / "sift_base.fvecs")
    queries = read_fvecs(directory / "sift_query.fvecs")
    if max_base is not None:
        base = base[:max_base]
    if max_queries is not None:
        queries = queries[:max_queries]

    rng = default_rng(seed)
    table = AttributeTable(base.shape[0])
    table.add_int_column(
        "label", rng.integers(1, n_labels + 1, size=base.shape[0])
    )
    workload = [
        HybridQuery(
            vector=query,
            predicate=Equals("label", int(rng.integers(1, n_labels + 1))),
        )
        for query in queries
    ]
    return HybridDataset(
        name="sift1m",
        vectors=base,
        table=table,
        queries=workload,
        extras={"label_column": "label", "n_labels": n_labels,
                "predicate_cardinality": n_labels},
    )
