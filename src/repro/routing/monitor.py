"""Mid-search walk monitoring: the RACORN-1 degeneration trigger.

ACORN's static router commits to a route before the first hop; when the
selectivity estimate is wrong (or the predicate is anti-correlated with
the query), a graph walk can degenerate — the frontier keeps expanding
nodes whose filtered neighborhoods are nearly empty, burning hops
without reaching the predicate subgraph.  RACORN-1 (arxiv 2607.00768)
observes that such walks are detectable *while they happen*: the
passing-rate of expanded neighborhoods collapses and the hop count
overshoots what a healthy walk of that effort would need.

:class:`WalkMonitor` implements that trigger as a budget hook threaded
through :func:`repro.hnsw.traversal.search_layer`: the kernel calls
``observe(n_passing)`` once per expanded node with the size of the
*filtered* neighborhood, and stops the walk as soon as the monitor
votes to abort.  The planner then discards the partial walk and falls
back to exact pre-filtering, so an abort can only ever cost efficiency,
never recall.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class WalkBudget:
    """Abort thresholds for one monitored graph walk.

    Attributes:
        hop_budget: maximum nodes the walk may expand before aborting —
            a healthy bottom-level walk expands O(ef) nodes, so a few
            multiples of ``ef_search`` is a generous ceiling.
        min_passing_rate: abort when the mean filtered-neighborhood
            size per hop, as a fraction of the index degree M, falls
            below this after the grace period.  A healthy walk inside
            the predicate subgraph sees ``min(1, s·γ)``-ish rates; a
            degenerate one sees near zero.
        grace_hops: hops before the passing-rate test arms — the
            filtering-only descent toward the subgraph legitimately
            sees empty neighborhoods early (§6.3.2's two-stage shape).
    """

    hop_budget: int
    min_passing_rate: float = 0.05
    grace_hops: int = 32

    def __post_init__(self) -> None:
        if self.hop_budget <= 0:
            raise ValueError(
                f"hop_budget must be positive, got {self.hop_budget}"
            )
        if not 0.0 <= self.min_passing_rate <= 1.0:
            raise ValueError(
                f"min_passing_rate must lie in [0, 1], "
                f"got {self.min_passing_rate}"
            )
        if self.grace_hops < 0:
            raise ValueError(
                f"grace_hops must be >= 0, got {self.grace_hops}"
            )


class WalkMonitor:
    """Per-query degeneration detector for one monitored traversal.

    One instance watches exactly one walk (create a fresh monitor per
    query); ``search_layer`` calls :meth:`observe` after each node
    expansion and stops the walk when it returns False.

    Args:
        budget: the abort thresholds.
        m: the index degree M the passing-rate is normalized by.
    """

    def __init__(self, budget: WalkBudget, m: int) -> None:
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        self.budget = budget
        self.m = int(m)
        self.hops = 0
        self.passing_total = 0
        self.aborted = False
        self.abort_reason = ""

    @property
    def passing_rate(self) -> float:
        """Mean filtered-neighborhood size per hop, as a fraction of M."""
        if self.hops == 0:
            return 1.0
        return self.passing_total / (self.hops * self.m)

    def observe(self, n_passing: int) -> bool:
        """Record one node expansion; returns False to abort the walk.

        Args:
            n_passing: size of the expanded node's *filtered*
                neighborhood (post-predicate, pre-visited-check).
        """
        if self.aborted:
            return False
        self.hops += 1
        self.passing_total += int(n_passing)
        if self.hops > self.budget.hop_budget:
            self.aborted = True
            self.abort_reason = (
                f"hop budget exhausted ({self.hops} > "
                f"{self.budget.hop_budget})"
            )
        elif (
            self.hops >= self.budget.grace_hops
            and self.passing_rate < self.budget.min_passing_rate
        ):
            self.aborted = True
            self.abort_reason = (
                f"passing rate collapsed ({self.passing_rate:.4f} < "
                f"{self.budget.min_passing_rate} after {self.hops} hops)"
            )
        return not self.aborted
