"""Adaptive cost-based query routing with runtime feedback.

The planner (:class:`RoutePlanner`) chooses among pre-filter / ACORN-γ /
ACORN-1 / post-filter per query from estimated selectivity, a query-
predicate correlation signal, and observed feedback
(:class:`RoutingFeedback`); monitored graph walks
(:class:`WalkMonitor`) that degenerate fall back to exact
pre-filtering, so routing mistakes cost efficiency, never recall.
See ``docs/routing.md``.
"""

from repro.routing.cost import (
    ALL_ROUTES,
    ROUTE_ACORN_GAMMA,
    ROUTE_ACORN_ONE,
    ROUTE_POST_FILTER,
    ROUTE_PRE_FILTER,
    CostModel,
)
from repro.routing.feedback import RouteObservation, RoutingFeedback
from repro.routing.monitor import WalkBudget, WalkMonitor
from repro.routing.planner import (
    POLICIES,
    RoutedSearchResult,
    RoutePlan,
    RoutePlanner,
)

__all__ = [
    "ALL_ROUTES",
    "POLICIES",
    "ROUTE_ACORN_GAMMA",
    "ROUTE_ACORN_ONE",
    "ROUTE_POST_FILTER",
    "ROUTE_PRE_FILTER",
    "CostModel",
    "RouteObservation",
    "RoutePlan",
    "RoutePlanner",
    "RoutedSearchResult",
    "RoutingFeedback",
    "WalkBudget",
    "WalkMonitor",
]
