"""Route cost model in the paper's hardware-independent units.

Predicts distance computations per query for each of the four hybrid
strategies (§3.2, §6.3.2):

- **pre-filter** — an exhaustive scan of the passing set: ``s·n + K``.
- **ACORN-γ** — a two-stage graph walk expanding ``O(ef + log(s·n))``
  nodes whose filtered neighborhoods hold ``min(M, s·M·γ)`` candidates
  each; below ``s_min = 1/γ`` the predicate subgraph loses its
  navigability guarantee, modeled as a ``1/(γ·s)`` connectivity blow-up.
- **ACORN-1** — the same walk over 2-hop expansions, whose filtered
  neighborhoods recover ``≈ s·M·(1+M)`` candidates (Figure 4c); its
  effective densification is M, so its blow-up threshold is ``1/M``.
- **post-filter** — unfiltered search with a ``max(ef, K/s)`` candidate
  budget (§7.2's strengthened baseline) at ``M`` computations per
  expansion.

Negative query correlation (paper §3.2.1: passing vectors sit *farther*
from the query than chance) inflates every graph-walking route — the
walk must traverse non-passing territory to reach its targets — while
leaving the scan-everything pre-filter untouched.

Costs are expressed in *graph-walk distance-computation equivalents*,
not raw counts: the pre-filter scan computes its distances in one
vectorized batch, so each of its computations costs a fixed
``scan_unit_cost`` fraction of a graph walk's pointer-chasing
computation (the paper's §3.2 cost model likewise notes brute-force
scans are the cheap regime at low selectivity).  The discount is a
fixed constant — never a measured time — so routing decisions stay
deterministic run-to-run.

The constants here are deliberately coarse: the planner multiplies each
prediction by the :class:`~repro.routing.feedback.RoutingFeedback`
calibration scale for its route, and replaces it entirely once the
(signature, route) pair has been observed.  What must be right is the
*shape* — which route wins as s, correlation, and ef vary — not the
absolute numbers.
"""

from __future__ import annotations

import math

ROUTE_PRE_FILTER = "pre-filter"
ROUTE_ACORN_GAMMA = "acorn-gamma"
ROUTE_ACORN_ONE = "acorn-1"
ROUTE_POST_FILTER = "post-filter"

#: Deterministic tie-break order: cheaper-to-be-wrong routes first
#: (pre-filter is exact whatever the estimate).
ALL_ROUTES = (
    ROUTE_PRE_FILTER,
    ROUTE_ACORN_GAMMA,
    ROUTE_ACORN_ONE,
    ROUTE_POST_FILTER,
)


class CostModel:
    """Per-route cost predictions for one index's parameters.

    Args:
        n: number of indexed entities.
        m: the index degree M.
        gamma: the ACORN-γ densification factor.
        s_floor: selectivity clamp guarding the ``1/s`` terms.
        correlation_weight: how strongly negative correlation inflates
            graph-route predictions (0 disables the signal).
        scan_unit_cost: cost of one vectorized scan distance relative
            to one graph-walk distance (the pre-filter route's
            per-computation discount).  A fixed constant so routing
            stays deterministic; 1.0 recovers raw-count costing.
        quant_unit_cost: cost of one quantized (int8/PQ-code) distance
            relative to one exact graph-walk distance.  Graph routes in
            ``quantized_routes`` have their walk predictions scaled by
            it, and :meth:`observed_units` converts observed quantized
            counts with it — so the feedback loop keeps calibrating the
            discount from real queries.
        quantized_routes: the routes whose backend index runs the
            quantized traversal hot path (empty by default; the
            planner marks them from each index's ``quantization``
            config).
    """

    def __init__(
        self,
        n: int,
        m: int,
        gamma: int,
        s_floor: float = 1e-4,
        correlation_weight: float = 1.0,
        scan_unit_cost: float = 0.25,
        quant_unit_cost: float = 0.25,
        quantized_routes=(),
    ) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if m <= 0 or gamma <= 0:
            raise ValueError(f"m and gamma must be positive, got {m}, {gamma}")
        self.n = int(n)
        self.m = int(m)
        self.gamma = int(gamma)
        if scan_unit_cost <= 0:
            raise ValueError(
                f"scan_unit_cost must be positive, got {scan_unit_cost}"
            )
        if quant_unit_cost <= 0:
            raise ValueError(
                f"quant_unit_cost must be positive, got {quant_unit_cost}"
            )
        for route in quantized_routes:
            if route not in ALL_ROUTES:
                raise ValueError(
                    f"unknown quantized route {route!r}; "
                    f"choose from {ALL_ROUTES}"
                )
        self.s_floor = float(s_floor)
        self.correlation_weight = float(correlation_weight)
        self.scan_unit_cost = float(scan_unit_cost)
        self.quant_unit_cost = float(quant_unit_cost)
        self.quantized_routes = frozenset(quantized_routes)

    def mark_quantized(self, *routes: str) -> None:
        """Flag ``routes`` as running the quantized traversal hot path.

        Their predicted walk costs pick up the ``quant_unit_cost``
        discount from the next :meth:`units` call on.
        """
        for route in routes:
            if route not in ALL_ROUTES:
                raise ValueError(
                    f"unknown route {route!r}; choose from {ALL_ROUTES}"
                )
        self.quantized_routes = self.quantized_routes | frozenset(routes)

    def unit_cost(self, route: str) -> float:
        """Cost units per distance computation on ``route``.

        Converts observed raw computation counts into the model's
        units, so feedback observations stay comparable to
        predictions.
        """
        if route not in ALL_ROUTES:
            raise ValueError(
                f"unknown route {route!r}; choose from {ALL_ROUTES}"
            )
        return self.scan_unit_cost if route == ROUTE_PRE_FILTER else 1.0

    def observed_units(
        self, route: str, exact_comps: int, quantized_comps: int = 0
    ) -> float:
        """Convert one query's realized computation counts into units.

        Exact computations bill at :meth:`unit_cost`; quantized code
        scans bill at ``quant_unit_cost``.  This is what the planner
        feeds the feedback store, so observations on a quantized route
        stay comparable to the (discounted) predictions.
        """
        return (
            exact_comps * self.unit_cost(route)
            + quantized_comps * self.quant_unit_cost
        )

    def _graph_units(
        self,
        s: float,
        k: int,
        ef_search: int,
        densification: int,
        correlation: float,
    ) -> float:
        """Shared graph-walk shape for the two ACORN routes."""
        subgraph = max(s * self.n, 2.0)
        expansions = max(ef_search, k) + math.log2(subgraph)
        per_hop = max(min(self.m, s * self.m * densification), 1.0)
        # Below 1/densification the predicate subgraph is no longer
        # navigable: each expansion yields fewer passing neighbors AND
        # the walk needs more expansions to make progress.  The squared
        # term keeps the penalty alive past the per-hop clamp (a single
        # 1/(d·s) factor would cancel against ``s·M·d`` exactly).
        blowup = max(1.0, 1.0 / (densification * s)) ** 2
        penalty = 1.0 + self.correlation_weight * max(-correlation, 0.0)
        return expansions * per_hop * blowup * penalty

    def units(
        self,
        route: str,
        selectivity: float,
        k: int,
        ef_search: int,
        correlation: float = 0.0,
    ) -> float:
        """Predicted cost units for one query on ``route``.

        Args:
            route: one of :data:`ALL_ROUTES`.
            selectivity: estimated predicate selectivity in [0, 1].
            k: neighbors requested.
            ef_search: the caller's effort knob.
            correlation: per-query correlation signal in [-1, 1]
                (negative = anti-correlated; see
                :func:`repro.datasets.correlation.point_correlation`).
        """
        s = min(max(float(selectivity), self.s_floor), 1.0)
        # A route on the quantized hot path walks over codes: its
        # per-computation price drops to quant_unit_cost (the exact
        # rerank tail is K·rerank_factor computations — second-order
        # next to the walk, and the feedback loop absorbs it anyway).
        discount = (
            self.quant_unit_cost if route in self.quantized_routes else 1.0
        )
        if route == ROUTE_PRE_FILTER:
            return (s * self.n + k) * self.scan_unit_cost
        if route == ROUTE_ACORN_GAMMA:
            return discount * self._graph_units(
                s, k, ef_search, self.gamma, correlation
            )
        if route == ROUTE_ACORN_ONE:
            # 2-hop expansion recovers ≈ M passing candidates per hop
            # when s·M·(1+M) ≥ M, i.e. its effective densification is M.
            return discount * self._graph_units(
                s, k, ef_search, self.m, correlation
            )
        if route == ROUTE_POST_FILTER:
            budget = min(max(ef_search, math.ceil(k / s)), self.n or 1)
            penalty = 1.0 + self.correlation_weight * max(-correlation, 0.0)
            return discount * budget * self.m * penalty
        raise ValueError(f"unknown route {route!r}; choose from {ALL_ROUTES}")

    def all_units(
        self,
        routes,
        selectivity: float,
        k: int,
        ef_search: int,
        correlation: float = 0.0,
    ) -> dict[str, float]:
        """Predictions for every route in ``routes`` (plan order kept)."""
        return {
            route: self.units(route, selectivity, k, ef_search, correlation)
            for route in routes
        }
