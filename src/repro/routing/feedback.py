"""Online routing feedback: observed per-route costs by predicate signature.

ACORN's cost model (§5.2, §6.3.2) predicts route costs from estimated
selectivity with hardcoded constants; the paper concedes those constants
are hardware- and workload-dependent.  This store closes the loop: every
executed query reports its route and realized cost (distance
computations — the paper's hardware-independent measure — plus latency
and hops for diagnostics), keyed by the predicate's
:meth:`~repro.predicates.base.Predicate.fingerprint`.  Later queries in
the batch consult it two ways:

- **per-signature observations** — once a (signature, route) pair has
  been executed, its observed mean cost replaces the model's guess
  entirely (the greedy-exploit half of a bandit);
- **per-route calibration scales** — every observation also updates an
  exponentially-weighted ratio of observed to modeled cost for its
  route, so even unseen signatures benefit from corrected constants.

Everything is deterministic (no RNG, pure dict arithmetic) and
lock-protected, so multi-worker batches converge to the same state for
a fixed query order and the routing double-run determinism CI gate can
diff route decisions byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import threading


@dataclasses.dataclass
class RouteObservation:
    """Aggregated realized cost of one (signature, route) pair."""

    count: int = 0
    total_cost: float = 0.0
    total_latency_s: float = 0.0
    total_hops: int = 0

    @property
    def mean_cost(self) -> float:
        """Mean observed cost (0.0 before any observation)."""
        if self.count == 0:
            return 0.0
        return self.total_cost / self.count


class RoutingFeedback:
    """Deterministic per-signature route-cost store with online calibration.

    Args:
        smoothing: EWMA factor for the per-route calibration scales
            (1.0 trusts only the latest observation, small values
            average over the batch).
        min_observations: observations of a (signature, route) pair
            before its mean replaces the model prediction.
        initial_scales: optional starting calibration multipliers per
            route name.  Values below 1.0 make a route look cheaper
            than modeled until real observations arrive — an
            exploration knob the route benchmark uses to force early
            graph attempts (and thereby exercise the walk-monitor
            fallback) on unseen signatures.
    """

    def __init__(
        self,
        smoothing: float = 0.3,
        min_observations: int = 1,
        initial_scales: dict[str, float] | None = None,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must lie in (0, 1], got {smoothing}")
        if min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self.smoothing = float(smoothing)
        self.min_observations = int(min_observations)
        self._lock = threading.Lock()
        self._scales: dict[str, float] = dict(initial_scales or {})
        self._observations: dict[tuple[str, str], RouteObservation] = {}
        self.batches_started = 0
        self.queries_recorded = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin_batch(self) -> None:
        """Engine hook: called once before each batch fans out.

        Learning persists across batches (observed constants stay
        valid); the counter only marks batch boundaries for
        diagnostics.  Call :meth:`reset` for a cold start.
        """
        with self._lock:
            self.batches_started += 1

    def reset(self) -> None:
        """Drop all observations and calibration back to the initial state."""
        with self._lock:
            self._observations.clear()
            self._scales.clear()
            self.queries_recorded = 0

    # ------------------------------------------------------------------
    # Recording and prediction
    # ------------------------------------------------------------------

    def record(
        self,
        signature: str,
        route: str,
        observed_cost: float,
        model_cost: float | None = None,
        latency_s: float = 0.0,
        hops: int = 0,
    ) -> None:
        """Record one executed query's realized cost for its route.

        Args:
            signature: the predicate fingerprint.
            route: the route that produced the final result.
            observed_cost: realized cost in model units (distance
                computations, including any fallback work — the true
                price of having chosen this route).
            model_cost: what the cost model predicted before execution;
                when positive, updates the route's calibration scale.
            latency_s / hops: extra telemetry kept for diagnostics
                (never used for routing — wall-time would break
                run-to-run determinism of route decisions).
        """
        with self._lock:
            agg = self._observations.setdefault(
                (signature, route), RouteObservation()
            )
            agg.count += 1
            agg.total_cost += float(observed_cost)
            agg.total_latency_s += float(latency_s)
            agg.total_hops += int(hops)
            self.queries_recorded += 1
            if model_cost is not None and model_cost > 0:
                ratio = float(observed_cost) / float(model_cost)
                previous = self._scales.get(route)
                if previous is None:
                    self._scales[route] = ratio
                else:
                    self._scales[route] = (
                        (1.0 - self.smoothing) * previous
                        + self.smoothing * ratio
                    )

    def cost_scale(self, route: str) -> float:
        """Current calibration multiplier for a route (1.0 when unseen)."""
        with self._lock:
            return self._scales.get(route, 1.0)

    def predict(self, signature: str, route: str, model_cost: float) -> float:
        """Best available cost prediction for routing one query.

        Observed mean cost when the (signature, route) pair has enough
        observations; otherwise the model prediction times the route's
        calibration scale.
        """
        with self._lock:
            agg = self._observations.get((signature, route))
            if agg is not None and agg.count >= self.min_observations:
                return agg.mean_cost
            return float(model_cost) * self._scales.get(route, 1.0)

    def observation(
        self, signature: str, route: str
    ) -> RouteObservation | None:
        """A copy of the stored aggregate for one pair (None when unseen)."""
        with self._lock:
            agg = self._observations.get((signature, route))
            return dataclasses.replace(agg) if agg is not None else None

    def snapshot(self) -> dict:
        """JSON-friendly view of the store (tests and diagnostics)."""
        with self._lock:
            return {
                "batches_started": self.batches_started,
                "queries_recorded": self.queries_recorded,
                "scales": dict(self._scales),
                "observations": {
                    f"{route}::{signature}": dataclasses.asdict(agg)
                    for (signature, route), agg in sorted(
                        self._observations.items()
                    )
                },
            }
