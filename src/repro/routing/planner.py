"""Adaptive per-query route planning across the four hybrid strategies.

:class:`RoutePlanner` generalizes the paper's static §5.2 rule
("pre-filter below ``s_min = 1/γ``, graph search above") into a
cost-based planner in the spirit of NaviX (arxiv 2506.23397): each
query's route — pre-filter, ACORN-γ, ACORN-1, or post-filter — is the
argmin of predicted cost, where the prediction combines

1. estimated selectivity from any
   :class:`~repro.predicates.selectivity.SelectivityEstimator`,
2. a per-query correlation signal
   (:func:`repro.datasets.correlation.point_correlation`), and
3. observed feedback from earlier queries in the batch
   (:class:`~repro.routing.feedback.RoutingFeedback`), which calibrates
   the :class:`~repro.routing.cost.CostModel`'s constants online and
   outright replaces predictions for already-seen predicate signatures.

Graph routes additionally run under a
:class:`~repro.routing.monitor.WalkMonitor`: a walk whose frontier
passing-rate collapses (or whose hop budget runs out) is abandoned for
an exact pre-filter fallback — the RACORN-1 recovery — so every planner
decision, right or wrong, preserves result quality.  Misroutes and
aborted walks cost distance computations, never recall; the misroute
regression suite pins exactly that.

``policy="static"`` reproduces the legacy
:class:`~repro.core.router.HybridSearcher` threshold rule byte-for-byte
(same routes, same results, same counters) for backwards compatibility.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.prefilter import PreFilterSearcher
from repro.core.acorn import AcornIndex
from repro.datasets.correlation import point_correlation
from repro.engine.batching import BatchSearchMixin
from repro.hnsw.hnsw import SearchResult
from repro.predicates.base import CompiledPredicate, Predicate
from repro.predicates.selectivity import (
    ExactSelectivityEstimator,
    SelectivityEstimator,
)
from repro.routing.cost import (
    ALL_ROUTES,
    ROUTE_ACORN_GAMMA,
    ROUTE_ACORN_ONE,
    ROUTE_POST_FILTER,
    ROUTE_PRE_FILTER,
    CostModel,
)
from repro.routing.feedback import RoutingFeedback
from repro.routing.monitor import WalkBudget, WalkMonitor

POLICIES = ("static", "adaptive")


@dataclasses.dataclass
class RoutedSearchResult(SearchResult):
    """A :class:`~repro.hnsw.hnsw.SearchResult` plus routing telemetry.

    Attributes:
        route_chosen: the route that produced the final results
            (``"pre-filter"`` after a fallback, whatever was attempted
            first).
        route_reason: why — the decision rule for a direct execution,
            or the monitor's abort reason for a fallback.
        fallback_triggered: True when a monitored graph walk was
            abandoned and the results come from the pre-filter
            fallback.
        estimator_error: signed ``estimate - exact`` selectivity error
            of this query's estimate.
        est_selectivity: the selectivity estimate the router used.
    """

    route_chosen: str = ""
    route_reason: str = ""
    fallback_triggered: bool = False
    estimator_error: float = 0.0
    est_selectivity: float = 0.0


@dataclasses.dataclass
class RoutePlan:
    """EXPLAIN-style preview of one query's routing decision.

    Attributes:
        route: the route the planner would execute first.
        reason: human-readable decision rationale.
        policy: the planner policy that produced the decision.
        estimated_selectivity: the selectivity estimate used.
        correlation: the per-query correlation signal used (0.0 when
            disabled or unavailable).
        predicted_costs: per-route predicted distance computations
            (empty for the static policy, which never costs routes).
    """

    route: str
    reason: str
    policy: str
    estimated_selectivity: float
    correlation: float
    predicted_costs: dict[str, float]


class RoutePlanner(BatchSearchMixin):
    """Cost-based per-query router over the hybrid-search strategies.

    Args:
        index: the ACORN-γ index (always available as a route; also
            supplies the table, vectors, metric, and parameters).
        acorn_one: optional ACORN-1 index over the same vectors/table;
            enables the ``acorn-1`` route.
        postfilter: optional
            :class:`~repro.baselines.postfilter.PostFilterSearcher`
            over the same vectors/table; enables ``post-filter``.
        estimator: selectivity estimator consulted for raw predicates
            (exact mask evaluation by default — what a system with
            precomputed filter bitmaps effectively has).
        policy: ``"adaptive"`` (cost-based, the default) or
            ``"static"`` (the legacy §5.2 threshold rule, byte-
            identical to :class:`~repro.core.router.HybridSearcher`).
        s_min: static-policy threshold (defaults to the index's 1/γ).
        cost_model: route cost model (defaults to one shaped by the
            index's n/M/γ).
        feedback: the online feedback store; supply a shared instance
            to carry calibration across planners, or leave default for
            a private one.
        walk_budget: :class:`~repro.routing.monitor.WalkBudget` for
            monitored graph walks, ``"auto"`` (default) to derive a
            hop budget from each query's effort, or None to disable
            mid-search fallback entirely.
        correlation_samples: per-query sample size for the correlation
            signal (0 disables it — estimation-only routing).
        correlation_seed: RNG seed for the correlation probe's uniform
            sample (fixed per planner, keeping decisions deterministic).
    """

    def __init__(
        self,
        index: AcornIndex,
        acorn_one: AcornIndex | None = None,
        postfilter=None,
        estimator: SelectivityEstimator | None = None,
        policy: str = "adaptive",
        s_min: float | None = None,
        cost_model: CostModel | None = None,
        feedback: RoutingFeedback | None = None,
        walk_budget="auto",
        correlation_samples: int = 0,
        correlation_seed: int = 0,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {POLICIES}"
            )
        if walk_budget is not None and walk_budget != "auto":
            if not isinstance(walk_budget, WalkBudget):
                raise TypeError(
                    "walk_budget must be a WalkBudget, 'auto', or None"
                )
        self.index = index
        self.table = index.table
        self.acorn_one = acorn_one
        self.postfilter = postfilter
        self.policy = policy
        self.estimator = (
            estimator
            if estimator is not None
            else ExactSelectivityEstimator(index.table)
        )
        self.s_min = s_min if s_min is not None else index.params.s_min
        self.cost_model = (
            cost_model
            if cost_model is not None
            else CostModel(
                n=len(index), m=index.params.m, gamma=index.params.gamma
            )
        )
        if cost_model is None:
            # Routes whose backend walks quantized codes are cheaper
            # per computation; tell the model so its predictions (and
            # the feedback conversions) carry the discount.
            if getattr(index, "quantization", None) is not None:
                self.cost_model.mark_quantized(ROUTE_ACORN_GAMMA)
            if (
                acorn_one is not None
                and getattr(acorn_one, "quantization", None) is not None
            ):
                self.cost_model.mark_quantized(ROUTE_ACORN_ONE)
        self.feedback = feedback if feedback is not None else RoutingFeedback()
        self.walk_budget = walk_budget
        self.correlation_samples = int(correlation_samples)
        self.correlation_seed = int(correlation_seed)
        self.prefilter = PreFilterSearcher(
            index.store.vectors, index.table, metric=index.metric
        )
        self.last_plan: RoutePlan | None = None

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------

    def freeze(self) -> None:
        """Freeze every backend's adjacency snapshot (batch-engine hook)."""
        if len(self.index):
            self.index.freeze()
        if self.acorn_one is not None and len(self.acorn_one):
            self.acorn_one.freeze()
        postfreeze = getattr(self.postfilter, "freeze", None)
        if callable(postfreeze):
            postfreeze()

    def begin_batch(self) -> None:
        """Batch-lifecycle hook: forwarded to the feedback store."""
        self.feedback.begin_batch()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def routes(self) -> tuple[str, ...]:
        """Available routes, in deterministic tie-break order."""
        available = [ROUTE_PRE_FILTER, ROUTE_ACORN_GAMMA]
        if self.acorn_one is not None:
            available.append(ROUTE_ACORN_ONE)
        if self.postfilter is not None:
            available.append(ROUTE_POST_FILTER)
        return tuple(r for r in ALL_ROUTES if r in available)

    def _decide(
        self,
        signature: str,
        estimate: float,
        k: int,
        ef_search: int,
        correlation: float,
    ) -> RoutePlan:
        """The routing decision for one query, without executing it."""
        if self.policy == "static":
            if estimate < self.s_min:
                route, op = ROUTE_PRE_FILTER, "<"
            else:
                route, op = ROUTE_ACORN_GAMMA, ">="
            return RoutePlan(
                route=route,
                reason=(
                    f"static: estimate {estimate:.4f} {op} "
                    f"s_min {self.s_min:.4f}"
                ),
                policy=self.policy,
                estimated_selectivity=float(estimate),
                correlation=0.0,
                predicted_costs={},
            )
        available = self.routes()
        model_units = self.cost_model.all_units(
            available, estimate, k, ef_search, correlation
        )
        predicted = {
            route: self.feedback.predict(signature, route, units)
            for route, units in model_units.items()
        }
        # min() is stable, and ``available`` follows ALL_ROUTES order,
        # so ties break toward the route that is cheapest to be wrong
        # about (pre-filter first) — deterministically.
        route = min(available, key=predicted.__getitem__)
        return RoutePlan(
            route=route,
            reason=(
                f"adaptive: argmin predicted cost "
                f"{predicted[route]:.0f} (est s={estimate:.4f}, "
                f"corr={correlation:+.2f})"
            ),
            policy=self.policy,
            estimated_selectivity=float(estimate),
            correlation=float(correlation),
            predicted_costs=predicted,
        )

    def plan(
        self,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
    ) -> RoutePlan:
        """EXPLAIN: the decision one query would get, without searching.

        The correlation signal needs the query vector, so planning
        without one uses a neutral 0.0.
        """
        if isinstance(predicate, CompiledPredicate):
            raw = predicate.predicate
            estimate = predicate.selectivity
        else:
            raw = predicate
            estimate = self.estimator.estimate(predicate)
        return self._decide(
            raw.fingerprint(), estimate, k, ef_search, correlation=0.0
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _make_monitor(self, k: int, ef_search: int, target) -> WalkMonitor:
        budget = self.walk_budget
        if budget == "auto":
            budget = WalkBudget(hop_budget=4 * max(ef_search, k) + 32)
        return WalkMonitor(budget, m=target.params.m)

    def _correlation(
        self, query: np.ndarray, compiled: CompiledPredicate
    ) -> float:
        if (
            self.correlation_samples <= 0
            or len(self.index) == 0
            or compiled.cardinality == 0
        ):
            return 0.0
        return point_correlation(
            self.index.store.vectors,
            query,
            compiled.passing_ids,
            n_samples=self.correlation_samples,
            seed=self.correlation_seed,
            metric=self.index.metric,
        )

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
        selectivity_hint: float | None = None,
    ) -> RoutedSearchResult:
        """Answer one hybrid query on the planner's chosen route.

        Args:
            selectivity_hint: optional externally-supplied selectivity
                estimate (the sharded index passes its router's
                per-shard summary estimate as the prior), overriding
                the planner's estimator.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if isinstance(predicate, CompiledPredicate):
            raw = predicate.predicate
            compiled = predicate
        else:
            raw = predicate
            compiled = predicate.compile(self.table)
        exact = compiled.selectivity
        if selectivity_hint is not None:
            estimate = float(selectivity_hint)
        elif isinstance(predicate, CompiledPredicate) and (
            self.policy == "static"
            or isinstance(self.estimator, ExactSelectivityEstimator)
        ):
            # Matches HybridSearcher (and skips the mask re-evaluation
            # an exact estimator would redo): a pre-compiled predicate
            # carries its exact selectivity.  An adaptive planner with
            # a *non-exact* estimator still consults it, so estimator
            # error stays a live signal under the batch engine's
            # predicate cache.
            estimate = compiled.selectivity
        else:
            estimate = self.estimator.estimate(raw)

        correlation = 0.0
        if self.policy == "adaptive":
            correlation = self._correlation(query, compiled)
        signature = raw.fingerprint()
        plan = self._decide(signature, estimate, k, ef_search, correlation)
        self.last_plan = plan

        # Tombstones compose once, exactly as the legacy router does;
        # the graph indexes re-derive the same composed mask from their
        # per-predicate cache, so no route can resurrect a deleted row.
        exec_compiled = compiled
        if self.index.num_deleted:
            mask = self.index._effective_mask(compiled.mask)
            exec_compiled = CompiledPredicate(compiled.predicate, mask)

        fallback = False
        reason = plan.reason
        walk_comps = walk_hops = walk_visited = walk_quant = 0
        if plan.route == ROUTE_PRE_FILTER:
            result = self.prefilter.search(query, exec_compiled, k)
        elif plan.route == ROUTE_POST_FILTER:
            result = self.postfilter.search(
                query, exec_compiled, k, ef_search=ef_search
            )
        else:
            target = (
                self.index
                if plan.route == ROUTE_ACORN_GAMMA
                else self.acorn_one
            )
            monitor = None
            if self.policy == "adaptive" and self.walk_budget is not None:
                monitor = self._make_monitor(k, ef_search, target)
            if monitor is None:
                result = target.search(
                    query, exec_compiled, k, ef_search=ef_search
                )
            else:
                result = target.search(
                    query, exec_compiled, k, ef_search=ef_search,
                    monitor=monitor,
                )
            if monitor is not None and monitor.aborted:
                # RACORN-1 recovery: discard the degenerate walk and
                # answer exactly.  The walk's counters stay on the
                # query's bill — that is the realized price of the
                # misroute.
                fallback = True
                reason = f"fallback from {plan.route}: {monitor.abort_reason}"
                walk_comps = int(result.distance_computations)
                walk_hops = int(result.hops)
                walk_visited = int(result.visited_nodes)
                walk_quant = int(getattr(result, "quantized_distances", 0))
                result = self.prefilter.search(query, exec_compiled, k)

        total_comps = int(result.distance_computations) + walk_comps
        total_hops = int(result.hops) + walk_hops
        total_visited = int(result.visited_nodes) + walk_visited
        total_quant = (
            int(getattr(result, "quantized_distances", 0)) + walk_quant
        )
        final_route = ROUTE_PRE_FILTER if fallback else plan.route

        if self.policy == "adaptive":
            # Bill the *attempted* route with the query's full realized
            # cost (walk + any fallback): that is what choosing it
            # cost.  Raw counts convert to the model's units per leg,
            # so observations stay comparable to predictions.
            scan_units = (
                int(result.distance_computations)
                * self.cost_model.unit_cost(ROUTE_PRE_FILTER)
            )
            if fallback:
                observed = (
                    self.cost_model.observed_units(
                        plan.route, walk_comps, walk_quant
                    )
                    + scan_units
                )
            else:
                observed = self.cost_model.observed_units(
                    plan.route, total_comps, total_quant
                )
            self.feedback.record(
                signature,
                plan.route,
                observed,
                model_cost=plan.predicted_costs.get(plan.route),
                hops=total_hops,
            )
            if fallback:
                # The fallback leg doubles as an unbiased pre-filter
                # observation for this signature.
                self.feedback.record(
                    signature,
                    ROUTE_PRE_FILTER,
                    scan_units,
                )

        return RoutedSearchResult(
            ids=result.ids,
            distances=result.distances,
            distance_computations=total_comps,
            hops=total_hops,
            visited_nodes=total_visited,
            quantized_distances=total_quant,
            rerank_distances=int(getattr(result, "rerank_distances", 0)),
            rerank_factor=float(getattr(result, "rerank_factor", 0.0)),
            route_chosen=final_route,
            route_reason=reason,
            fallback_triggered=fallback,
            estimator_error=float(estimate - exact),
            est_selectivity=float(estimate),
        )

    # ``search_batch`` comes from BatchSearchMixin: batches run through
    # repro.engine, which calls ``begin_batch`` before fanning out and
    # surfaces the routing fields in per-query QueryStats.
