"""Save and load indexes (and attribute tables) to ``.npz`` archives.

A production vector index must outlive the process that built it —
ACORN-γ construction is the expensive step, search is cheap.  This
module serializes :class:`~repro.hnsw.hnsw.HnswIndex`,
:class:`~repro.core.acorn.AcornIndex` and
:class:`~repro.core.acorn.AcornOneIndex` (including their attribute
tables) into a single compressed numpy archive and restores them
exactly: same graph, same entry point, same parameters, and — for the
ACORN indices — the same per-edge distances, so incremental insertion
can resume after loading.

String and keyword columns are stored as object arrays, so loading uses
``allow_pickle=True``; only load archives you trust, the standard numpy
caveat.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.attributes.table import AttributeTable, ColumnKind
from repro.core.acorn import AcornIndex, AcornOneIndex
from repro.core.flat import FlatAcornIndex
from repro.core.params import AcornParams, PruningStrategy
from repro.hnsw.graph import LayeredGraph
from repro.hnsw.hnsw import HnswIndex
from repro.vectors.quantized_store import (
    QuantizationConfig,
    QuantizedStore,
    codes_checksum,
)
from repro.vectors.store import VectorStore

_FORMAT_VERSION = 1


class QuantLoadError(RuntimeError):
    """An archive's quantized-code payload is incomplete or corrupt.

    Raised with the offending npz array named in the message (mirroring
    :class:`repro.shard.persistence.ShardLoadError`), so operators know
    exactly which artifact to restore; the index is never built over
    silently corrupted codes.
    """


def _pack_quantization(index, payload: dict) -> None:
    """Add the quantized-code arrays (if any) to a save payload.

    Keys are additive and optional — archives written without
    quantization load unchanged, and old readers ignore the extra keys
    — so the format version stays at 1.  The code array ships with a
    sha256 fingerprint (``quant_checksum``) verified on load.
    """
    if getattr(index, "quantization", None) is None:
        return
    qstore = index._quant_store()
    if qstore is None:
        return
    payload["quant_config"] = np.asarray(
        [index.quantization.to_json()], dtype=object
    )
    arrays = qstore.state_arrays()
    payload.update(arrays)
    payload["quant_checksum"] = np.asarray(
        [codes_checksum(arrays["quant_codes"])], dtype=object
    )


def _unpack_quantization(index, archive) -> None:
    """Restore the quantized-code mirror saved by :func:`_pack_quantization`.

    Raises:
        QuantLoadError: when the config is present but a code array is
            missing, or the stored checksum does not match the loaded
            ``quant_codes`` bytes.
    """
    if "quant_config" not in archive:
        return
    config = QuantizationConfig.from_json(str(archive["quant_config"][0]))
    needed = ["quant_codes"]
    needed += (["quant_sq_min", "quant_sq_scale"] if config.kind == "sq8"
               else ["quant_pq_codebooks"])
    arrays = {}
    for name in needed:
        if name not in archive:
            raise QuantLoadError(
                f"archive is missing quantized artifact {name!r}; restore "
                "the file or re-save the index"
            )
        arrays[name] = archive[name]
    expected = (str(archive["quant_checksum"][0])
                if "quant_checksum" in archive else None)
    if expected is not None:
        actual = codes_checksum(np.asarray(arrays["quant_codes"],
                                           dtype=np.uint8))
        if actual != expected:
            raise QuantLoadError(
                "checksum mismatch for quantized artifact 'quant_codes'; "
                f"the code array is corrupt (expected sha256 "
                f"{expected[:12]}..., got {actual[:12]}...)"
            )
    index.quantization = config
    index._quant = QuantizedStore.from_state(
        config, index.store.metric, arrays
    )


def _pack_graph(graph: LayeredGraph, payload: dict) -> None:
    payload["node_levels"] = np.asarray(
        [graph.node_level(v) for v in range(len(graph))], dtype=np.int64
    )
    payload["entry_point"] = np.asarray([graph.entry_point], dtype=np.int64)
    for level in range(graph.max_level + 1):
        nodes = sorted(graph.nodes_at_level(level))
        flat: list[int] = []
        offsets = [0]
        for node in nodes:
            flat.extend(graph.neighbors(node, level))
            offsets.append(len(flat))
        payload[f"level{level}_nodes"] = np.asarray(nodes, dtype=np.int64)
        payload[f"level{level}_offsets"] = np.asarray(offsets, dtype=np.int64)
        payload[f"level{level}_edges"] = np.asarray(flat, dtype=np.int64)


def _unpack_graph(archive) -> LayeredGraph:
    graph = LayeredGraph()
    node_levels = archive["node_levels"]
    for node, level in enumerate(node_levels.tolist()):
        graph.add_node(node, level)
    graph.entry_point = int(archive["entry_point"][0])
    level = 0
    while f"level{level}_nodes" in archive:
        nodes = archive[f"level{level}_nodes"]
        offsets = archive[f"level{level}_offsets"]
        edges = archive[f"level{level}_edges"]
        for i, node in enumerate(nodes.tolist()):
            graph.set_neighbors(
                node, level, edges[offsets[i] : offsets[i + 1]].tolist()
            )
        level += 1
    return graph


def _pack_table(table: AttributeTable, payload: dict) -> None:
    schema = []
    for idx, name in enumerate(table.column_names):
        kind = table.column_kind(name)
        schema.append({"name": name, "kind": kind.value})
        column = table.column(name)
        if kind is ColumnKind.KEYWORDS:
            vocab = [None] * len(column.vocab)
            for word, token in column.vocab.items():
                vocab[token] = word
            payload[f"col{idx}_vocab"] = np.asarray(vocab, dtype=object)
            payload[f"col{idx}_offsets"] = column.offsets
            payload[f"col{idx}_tokens"] = column.tokens
        else:
            payload[f"col{idx}_values"] = np.asarray(column)
    payload["table_schema"] = np.asarray([json.dumps(schema)], dtype=object)
    payload["table_rows"] = np.asarray([len(table)], dtype=np.int64)


def _unpack_table(archive) -> AttributeTable:
    schema = json.loads(str(archive["table_schema"][0]))
    table = AttributeTable(int(archive["table_rows"][0]))
    for idx, entry in enumerate(schema):
        kind = ColumnKind(entry["kind"])
        name = entry["name"]
        if kind is ColumnKind.INT:
            table.add_int_column(name, archive[f"col{idx}_values"])
        elif kind is ColumnKind.FLOAT:
            table.add_float_column(name, archive[f"col{idx}_values"])
        elif kind is ColumnKind.STRING:
            table.add_string_column(
                name, [str(v) for v in archive[f"col{idx}_values"]]
            )
        else:
            vocab = [str(v) for v in archive[f"col{idx}_vocab"]]
            offsets = archive[f"col{idx}_offsets"]
            tokens = archive[f"col{idx}_tokens"]
            lists = [
                [vocab[t] for t in tokens[offsets[i] : offsets[i + 1]]]
                for i in range(len(table))
            ]
            table.add_keywords_column(name, lists)
    return table


def save_index(index, path) -> None:
    """Serialize an index to ``path``.

    Single HNSW/ACORN indexes become one ``.npz`` archive; a
    :class:`~repro.shard.sharded.ShardedAcornIndex` becomes a manifest
    *directory* (see :mod:`repro.shard.persistence`).
    """
    from repro.shard.persistence import save_sharded
    from repro.shard.sharded import ShardedAcornIndex

    if isinstance(index, ShardedAcornIndex):
        save_sharded(index, path)
        return
    if not isinstance(index, (AcornIndex, HnswIndex)):
        raise TypeError(f"cannot serialize index of type {type(index).__name__}")
    payload: dict = {
        "format_version": np.asarray([_FORMAT_VERSION]),
        "vectors": index.store.vectors,
        "metric": np.asarray([index.store.metric.value], dtype=object),
    }
    _pack_graph(index.graph, payload)
    _pack_quantization(index, payload)
    if isinstance(index, AcornIndex):
        if isinstance(index, AcornOneIndex):
            kind = "acorn1"
        elif isinstance(index, FlatAcornIndex):
            kind = "acorn-flat"
        else:
            kind = "acorn"
        payload["kind"] = np.asarray([kind], dtype=object)
        payload["deleted"] = np.asarray(sorted(index._deleted), dtype=np.int64)
        p = index.params
        payload["params"] = np.asarray(
            [
                json.dumps(
                    {
                        "m": p.m,
                        "gamma": p.gamma,
                        "m_beta": p.m_beta,
                        "ef_construction": p.ef_construction,
                        "pruning": p.pruning.value,
                        "truncate_construction": p.truncate_construction,
                        "compressed_levels": p.compressed_levels,
                    }
                )
            ],
            dtype=object,
        )
        for level, per_node in enumerate(index._edge_dists):
            nodes = sorted(per_node)
            flat: list[float] = []
            for node in nodes:
                flat.extend(per_node[node])
            payload[f"dists{level}"] = np.asarray(flat, dtype=np.float64)
        _pack_table(index.table, payload)
    elif isinstance(index, HnswIndex):
        payload["kind"] = np.asarray(["hnsw"], dtype=object)
        payload["params"] = np.asarray(
            [json.dumps({"m": index.m, "ef_construction": index.ef_construction})],
            dtype=object,
        )
    else:
        raise TypeError(f"cannot serialize index of type {type(index).__name__}")
    np.savez_compressed(Path(path), **payload)


def load_index(path):
    """Restore an index previously saved with :func:`save_index`.

    A directory path (or one containing ``manifest.json``) restores a
    sharded index via :func:`repro.shard.persistence.load_sharded`.
    """
    if Path(path).is_dir():
        from repro.shard.persistence import load_sharded

        return load_sharded(path)
    with np.load(Path(path), allow_pickle=True) as archive:
        version = int(archive["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        kind = str(archive["kind"][0])
        params = json.loads(str(archive["params"][0]))
        vectors = archive["vectors"]
        metric = str(archive["metric"][0])
        graph = _unpack_graph(archive)

        if kind == "hnsw":
            index = HnswIndex(
                vectors.shape[1], m=params["m"],
                ef_construction=params["ef_construction"], metric=metric,
            )
            index.store = VectorStore.from_array(vectors, metric=metric)
            index.graph = graph
            _unpack_quantization(index, archive)
            return index

        table = _unpack_table(archive)
        acorn_params = AcornParams(
            m=params["m"],
            gamma=params["gamma"],
            m_beta=params["m_beta"],
            ef_construction=params["ef_construction"],
            pruning=PruningStrategy(params["pruning"]),
            truncate_construction=params["truncate_construction"],
            compressed_levels=params["compressed_levels"],
        )
        if kind == "acorn1":
            index = AcornOneIndex(
                vectors.shape[1], table, m=acorn_params.m,
                ef_construction=acorn_params.ef_construction, metric=metric,
            )
        elif kind == "acorn-flat":
            index = FlatAcornIndex(
                vectors.shape[1], table, params=acorn_params, metric=metric
            )
        else:
            index = AcornIndex(
                vectors.shape[1], table, params=acorn_params, metric=metric
            )
        index.store = VectorStore.from_array(vectors, metric=metric)
        index.graph = graph
        _unpack_quantization(index, archive)
        if "deleted" in archive:
            index._deleted = set(archive["deleted"].tolist())
        index._edge_dists = []
        level = 0
        while f"dists{level}" in archive:
            flat = archive[f"dists{level}"]
            per_node: dict[int, list[float]] = {}
            cursor = 0
            for node in sorted(graph.nodes_at_level(level)):
                count = len(graph.neighbors(node, level))
                per_node[node] = flat[cursor : cursor + count].tolist()
                cursor += count
            index._edge_dists.append(per_node)
            level += 1
        return index
