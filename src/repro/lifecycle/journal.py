"""WAL-style delta journal: checksummed JSONL of lifecycle writes.

Each line is one write operation wrapped with a truncated sha256 of
its canonical JSON encoding::

    {"crc": "9f86d081884c", "data": {"op": "insert", "seq": 0, ...}}

``insert`` records carry the external id, the vector (as a float list)
and the attribute row; ``delete`` records carry the external id.
Replay verifies every line's checksum and sequence number, so a
torn/corrupted journal fails loudly **naming the file and line** —
the same operator-first error contract as the shard manifest loader
(:mod:`repro.shard.persistence`).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

__all__ = ["DeltaJournal", "JournalError"]

_CRC_BYTES = 12


class JournalError(Exception):
    """A journal line failed verification (names file and line)."""


def _canonical(data: dict) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _crc(data: dict) -> str:
    return hashlib.sha256(
        _canonical(data).encode("utf-8")
    ).hexdigest()[:_CRC_BYTES]


def _jsonify(value):
    """Coerce numpy scalars/arrays in attribute rows to JSON types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


class DeltaJournal:
    """Append-only, checksummed record of lifecycle write operations."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def __len__(self) -> int:
        if not self.path.exists():
            return 0
        with self.path.open("r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    @staticmethod
    def insert_record(seq: int, external_id: int, vector, row: dict) -> dict:
        return {
            "op": "insert",
            "seq": int(seq),
            "external_id": int(external_id),
            "vector": [float(v) for v in np.asarray(vector).reshape(-1)],
            "row": {k: _jsonify(v) for k, v in row.items()},
        }

    @staticmethod
    def delete_record(seq: int, external_id: int) -> dict:
        return {
            "op": "delete",
            "seq": int(seq),
            "external_id": int(external_id),
        }

    def append(self, record: dict) -> None:
        """Append one record (its checksum is computed here)."""
        line = json.dumps(
            {"crc": _crc(record), "data": record}, sort_keys=True,
            separators=(",", ":"),
        )
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def append_many(self, records) -> None:
        """Append several records under one file open (same encoding)."""
        lines = [
            json.dumps({"crc": _crc(r), "data": r}, sort_keys=True,
                       separators=(",", ":"))
            for r in records
        ]
        with self.path.open("a", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def replay(self) -> list[dict]:
        """Verify and return every journaled record, in write order.

        Raises:
            JournalError: on a malformed line, checksum mismatch, or a
                broken sequence — always naming ``file: line N``.
        """
        name = self.path.name
        if not self.path.exists():
            raise JournalError(f"{name}: journal file is missing")
        records: list[dict] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    wrapper = json.loads(line)
                except json.JSONDecodeError as err:
                    raise JournalError(
                        f"{name}: line {lineno}: not valid JSON ({err.msg}); "
                        "the journal is torn or corrupt"
                    ) from err
                if (not isinstance(wrapper, dict)
                        or "crc" not in wrapper or "data" not in wrapper):
                    raise JournalError(
                        f"{name}: line {lineno}: record lacks crc/data "
                        "wrapper; the journal is corrupt"
                    )
                data = wrapper["data"]
                expected = _crc(data)
                if wrapper["crc"] != expected:
                    raise JournalError(
                        f"{name}: line {lineno}: checksum mismatch "
                        f"(expected {expected}, found {wrapper['crc']}); "
                        "the record is corrupt"
                    )
                if data.get("seq") != len(records):
                    raise JournalError(
                        f"{name}: line {lineno}: sequence break (expected "
                        f"seq {len(records)}, found {data.get('seq')}); "
                        "records are missing or reordered"
                    )
                records.append(data)
        return records
