"""Immutable epoch snapshots — what lifecycle readers actually search.

An :class:`EpochSnapshot` is a published, never-mutated view of the
dataset at one epoch: the frozen graph **base** (with an external-id
translation array), zero or more frozen **delta** segments (recent
writes, searched exactly), and the epoch's **tombstone set**.  Search
runs the base's graph traversal and a brute-force pass over each delta
segment, then folds the per-segment ``(distance, external_id)`` streams
through the shard layer's streaming top-k merge
(:func:`repro.shard.sharded.merge_topk`) — the same heap that merges
scatter-gather shard results, reused here for the base/delta merge.

Immutability contract: a snapshot holds every array it needs; writers
publishing later epochs and the compactor swapping the base never
touch a previously published snapshot, so a reader holding one sees
bit-identical results forever.  Tombstones compose into the base's
predicate mask exactly like a failing attribute (the
``_effective_mask`` pattern from :mod:`repro.core.acorn`), and hide
delta entries inside :meth:`DeltaView.topk` — a deleted entity can
never surface from either side.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hnsw.hnsw import SearchResult
from repro.lifecycle.delta import DeltaView
from repro.predicates.base import CompiledPredicate, Predicate
from repro.shard.sharded import merge_topk

__all__ = ["EpochSnapshot", "LifecycleSearchResult"]


@dataclasses.dataclass
class LifecycleSearchResult(SearchResult):
    """A :class:`SearchResult` stamped with lifecycle telemetry.

    Attributes:
        epoch: the epoch snapshot that answered the query (flows into
            ``QueryStats.epoch`` through the batch engine).
        delta_candidates: delta entries that passed the predicate and
            were scored exactly (the brute-force side of the merge).
        base_candidates: results the base graph search contributed
            before the merge.
    """

    epoch: int = 0
    delta_candidates: int = 0
    base_candidates: int = 0


class EpochSnapshot:
    """One published, immutable epoch of a :class:`LifecycleIndex`.

    Args:
        epoch: monotonically increasing publication counter.
        base: the frozen graph index (any ACORN-family class), or None
            for a delta-only lifecycle.
        base_ids: (len(base),) int64 external id of each base-internal
            node, strictly ascending.
        deltas: frozen delta segments, oldest first.
        tombstones: external ids deleted as of this epoch.
    """

    __slots__ = (
        "epoch", "base", "base_ids", "deltas", "tombstones",
        "_base_alive", "_readers",
    )

    def __init__(
        self,
        epoch: int,
        base,
        base_ids: np.ndarray,
        deltas: tuple[DeltaView, ...],
        tombstones: frozenset[int],
    ) -> None:
        self.epoch = int(epoch)
        self.base = base
        self.base_ids = np.asarray(base_ids, dtype=np.int64)
        self.base_ids.setflags(write=False)
        self.deltas = tuple(deltas)
        self.tombstones = frozenset(tombstones)
        alive = np.ones(self.base_ids.shape[0], dtype=bool)
        if self.tombstones and self.base_ids.shape[0]:
            dead = np.asarray(sorted(self.tombstones), dtype=np.int64)
            pos = np.searchsorted(self.base_ids, dead)
            in_range = pos < self.base_ids.shape[0]
            pos, dead = pos[in_range], dead[in_range]
            alive[pos[self.base_ids[pos] == dead]] = False
        alive.setflags(write=False)
        self._base_alive = alive
        self._readers = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def readers(self) -> int:
        """Readers currently holding this snapshot (acquire/release)."""
        return self._readers

    def live_count(self) -> int:
        """Live entities visible at this epoch (base + deltas)."""
        n = int(self._base_alive.sum())
        for view in self.deltas:
            for ext in view.external_ids.tolist():
                if ext not in self.tombstones:
                    n += 1
        return n

    def live_ids(self) -> np.ndarray:
        """Sorted external ids of every live entity at this epoch."""
        ids = [int(e) for e in self.base_ids[self._base_alive].tolist()]
        for view in self.deltas:
            ids.extend(
                int(e) for e in view.external_ids.tolist()
                if e not in self.tombstones
            )
        return np.asarray(sorted(ids), dtype=np.int64)

    def delta_size(self) -> int:
        """Total entries across the snapshot's delta segments."""
        return sum(len(view) for view in self.deltas)

    def live_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, vectors)`` for every live entity, ascending by id.

        The brute-force oracle input: because the snapshot owns every
        array, this stays valid (and bit-identical) even after later
        epochs compact the entities away.
        """
        ids_parts = [self.base_ids[self._base_alive]]
        vec_parts = [
            self.base.store.vectors[self._base_alive]
            if self.base is not None and len(self.base) > 0
            else np.empty((0, 0), dtype=np.float32)
        ]
        for view in self.deltas:
            keep = np.asarray(
                [e not in self.tombstones
                 for e in view.external_ids.tolist()],
                dtype=bool,
            )
            ids_parts.append(view.external_ids[keep])
            vec_parts.append(view.vectors[keep])
        vec_parts = [v for v in vec_parts if v.size or v.shape[0]]
        ids = np.concatenate(ids_parts)
        vectors = (np.concatenate(vec_parts) if vec_parts
                   else np.empty((0, 0), dtype=np.float32))
        order = np.argsort(ids, kind="stable")
        return ids[order], vectors[order]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
    ) -> LifecycleSearchResult:
        """Merged hybrid search over base + deltas, minus tombstones.

        Result ids are **external ids**.  A pre-compiled predicate is
        honored on the base side only when it was compiled against
        *this snapshot's* base table (``compiled.table is base.table``
        — the batch engine compiles against the table of the epoch it
        pins); anything else — including a mask of coincidentally equal
        length compiled before a compaction swapped the base — is
        recompiled from the raw predicate.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        raw = (predicate.predicate
               if isinstance(predicate, CompiledPredicate) else predicate)
        streams: list[list[tuple[float, int]]] = []
        ndist = hops = visited = 0
        base_candidates = delta_candidates = 0

        if self.base is not None and len(self.base) > 0:
            if (isinstance(predicate, CompiledPredicate)
                    and predicate.table is self.base.table):
                base_mask = predicate.mask
            else:
                base_mask = np.asarray(
                    raw.mask(self.base.table), dtype=bool
                )
            composed = base_mask & self._base_alive
            composed.setflags(write=False)
            result = self.base.search(
                query, CompiledPredicate(raw, composed), k,
                ef_search=ef_search,
            )
            ndist += int(result.distance_computations)
            hops += int(result.hops)
            visited += int(result.visited_nodes)
            base_candidates = len(result)
            streams.append([
                (float(d), int(self.base_ids[i]))
                for d, i in zip(result.distances.tolist(),
                                result.ids.tolist())
            ])

        for view in self.deltas:
            stream, scored = view.topk(query, raw, k, self.tombstones)
            ndist += scored
            delta_candidates += len(stream)
            streams.append(stream)

        merged = merge_topk(streams, k)
        ids = np.asarray([e for _, e in merged], dtype=np.intp)
        dists = np.asarray([d for d, _ in merged], dtype=np.float32)
        return LifecycleSearchResult(
            ids=ids,
            distances=dists,
            distance_computations=ndist,
            hops=hops,
            visited_nodes=visited,
            epoch=self.epoch,
            delta_candidates=delta_candidates,
            base_candidates=base_candidates,
        )

    def exact_search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
    ) -> LifecycleSearchResult:
        """Brute-force oracle: exact top-k over the live, passing set.

        Scans every base entity instead of walking the graph, so its
        results are ground truth for this snapshot — what the
        equivalence harness and the lifecycle bench measure recall
        against.  Same tie-breaking (ascending distance, then id) as
        :meth:`search`.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        raw = (predicate.predicate
               if isinstance(predicate, CompiledPredicate) else predicate)
        streams: list[list[tuple[float, int]]] = []
        ndist = 0
        if self.base is not None and len(self.base) > 0:
            mask = (np.asarray(raw.mask(self.base.table), dtype=bool)
                    & self._base_alive)
            passing = np.flatnonzero(mask)
            if passing.size:
                computer = self.base.store.computer()
                q = computer.set_query(query)
                dists = computer.distances_to(q, passing)
                ext = self.base_ids[passing]
                order = np.lexsort((ext, dists))[:k]
                streams.append([
                    (float(dists[i]), int(ext[i])) for i in order.tolist()
                ])
                ndist += int(passing.size)
        for view in self.deltas:
            stream, scored = view.topk(query, raw, k, self.tombstones)
            streams.append(stream)
            ndist += scored
        merged = merge_topk(streams, k)
        return LifecycleSearchResult(
            ids=np.asarray([e for _, e in merged], dtype=np.intp),
            distances=np.asarray([d for d, _ in merged], dtype=np.float32),
            distance_computations=ndist,
            epoch=self.epoch,
        )
