"""Streaming index lifecycle: delta writes, epoch snapshots, compaction.

The update-heavy serving story for the ACORN reproduction: a mutable
:class:`DeltaIndex` absorbs inserts, an external tombstone set absorbs
deletes, readers search immutable published :class:`EpochSnapshot`
objects, and a :class:`BackgroundCompactor` folds the delta into the
graph base with the wave-parallel bulk builder — the online counterpart
of :func:`repro.core.maintenance.rebuild`, with the same id-remap
contract and a byte-identity equivalence test against it.

See ``docs/lifecycle.md`` for epoch semantics, the write path,
compaction triggers, and the determinism contract.
"""

from repro.lifecycle.compactor import (
    BackgroundCompactor,
    CompactorFaultPlan,
    CompactorKilled,
    COMPACTION_STAGES,
)
from repro.lifecycle.delta import DeltaIndex, DeltaView
from repro.lifecycle.epoch import EpochSnapshot, LifecycleSearchResult
from repro.lifecycle.journal import DeltaJournal, JournalError
from repro.lifecycle.manager import (
    CompactionInProgress,
    CompactionReport,
    LifecycleConfig,
    LifecycleIndex,
)
from repro.lifecycle.persistence import (
    LifecycleLoadError,
    load_lifecycle,
    save_lifecycle,
)
from repro.lifecycle.sharded import ShardedLifecycleIndex

__all__ = [
    "BackgroundCompactor",
    "COMPACTION_STAGES",
    "CompactionInProgress",
    "CompactionReport",
    "CompactorFaultPlan",
    "CompactorKilled",
    "DeltaIndex",
    "DeltaJournal",
    "DeltaView",
    "EpochSnapshot",
    "JournalError",
    "LifecycleConfig",
    "LifecycleIndex",
    "LifecycleLoadError",
    "LifecycleSearchResult",
    "ShardedLifecycleIndex",
    "load_lifecycle",
    "save_lifecycle",
]
