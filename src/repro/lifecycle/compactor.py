"""Clock-driven background compaction with seeded fault injection.

:class:`BackgroundCompactor` is the operational wrapper around
:meth:`LifecycleIndex.maybe_compact`: a host (the serving layer's
``poll()``, a maintenance thread, a test driver) calls :meth:`tick`
periodically; the compactor consults the lifecycle's size/tombstone
policy plus its own interval on the **pluggable clock**, so a
:class:`~repro.utils.clock.FakeClock` replay makes every compaction
fire at exactly the same virtual instant on every run.

Crash testing reuses the seeded-injection idiom of
:mod:`repro.shard.faults`: a :class:`CompactorFaultPlan` decides from a
seed at which (attempt, stage) the compactor "dies" mid-merge, raising
:class:`CompactorKilled` out of the lifecycle's ``on_stage`` hook.  The
lifecycle guarantees a killed compaction leaves the old epoch fully
live; :meth:`tick` records the crash and the next tick is the respawn
that retries.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.lifecycle.manager import (
    CompactionInProgress,
    CompactionReport,
    LifecycleIndex,
)
from repro.utils.clock import Clock

__all__ = [
    "BackgroundCompactor", "CompactorFaultPlan", "CompactorKilled",
    "COMPACTION_STAGES",
]

#: Stages the lifecycle's ``on_stage`` hook passes through, in order.
COMPACTION_STAGES = ("cut", "build", "install")


class CompactorKilled(RuntimeError):
    """The injected mid-merge death of a compactor attempt."""


@dataclasses.dataclass(frozen=True)
class CompactorFaultPlan:
    """Seeded schedule of compactor deaths.

    Attributes:
        kill_attempts: map of attempt index (0-based, counted across
            the compactor's lifetime) to the stage name at which that
            attempt dies.
    """

    kill_attempts: dict[int, str] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        for attempt, stage in self.kill_attempts.items():
            if stage not in COMPACTION_STAGES:
                raise ValueError(
                    f"unknown compaction stage {stage!r} for attempt "
                    f"{attempt}; stages are {COMPACTION_STAGES}"
                )

    @classmethod
    def seeded(
        cls, seed: int, n_kills: int, attempts_span: int = 4
    ) -> "CompactorFaultPlan":
        """Derive a reproducible kill schedule from a seed.

        Picks ``n_kills`` distinct attempt indices in
        ``[0, attempts_span)`` and a random stage for each — the same
        seed always kills the same attempts at the same stages.
        """
        gen = np.random.default_rng(seed)
        n_kills = min(int(n_kills), int(attempts_span))
        chosen = gen.choice(attempts_span, size=n_kills, replace=False)
        stages = gen.choice(len(COMPACTION_STAGES), size=n_kills)
        return cls(kill_attempts={
            int(a): COMPACTION_STAGES[int(s)]
            for a, s in zip(chosen, stages)
        })

    def hook_for(self, attempt: int):
        """The ``on_stage`` hook for one attempt (None if it survives)."""
        stage = self.kill_attempts.get(int(attempt))
        if stage is None:
            return None

        def on_stage(reached: str) -> None:
            if reached == stage:
                raise CompactorKilled(
                    f"compactor killed at stage {stage!r} "
                    f"(attempt {attempt})"
                )

        return on_stage


class BackgroundCompactor:
    """Periodic compaction driver over one :class:`LifecycleIndex`.

    Args:
        lifecycle: the index to compact.
        interval_s: minimum clock seconds between *successful*
            compactions triggered by :meth:`tick` (crashed attempts
            retry on the next tick regardless).
        fault_plan: optional seeded kill schedule (chaos tests).
        clock: defaults to the lifecycle's clock.
    """

    def __init__(
        self,
        lifecycle: LifecycleIndex,
        interval_s: float = 0.0,
        fault_plan: CompactorFaultPlan | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.lifecycle = lifecycle
        self.interval_s = float(interval_s)
        self.fault_plan = fault_plan
        self.clock = clock or lifecycle.clock
        self.attempts = 0
        self.crashes = 0
        self.compactions = 0
        self.last_run_s: float | None = None
        self.last_error: str | None = None

    def tick(self) -> CompactionReport | None:
        """One scheduling step: compact if due, survive injected death.

        Returns the :class:`CompactionReport` when a compaction ran to
        completion, None when the policy held it back, the attempt lost
        the admission race to a concurrent compaction (routine when two
        hosts tick the same lifecycle — ``should_compact`` drops the
        lock before ``compact`` reacquires it), or the attempt crashed
        (the crash is counted and the old epoch stays live).
        """
        now = self.clock.monotonic()
        if (self.last_run_s is not None
                and now - self.last_run_s < self.interval_s):
            return None
        if not self.lifecycle.should_compact():
            return None
        hook = (self.fault_plan.hook_for(self.attempts)
                if self.fault_plan is not None else None)
        self.attempts += 1
        try:
            report = self.lifecycle.compact(on_stage=hook)
        except CompactionInProgress:
            # Lost the race; nothing ran, so the attempt index (which
            # drives the seeded fault schedule) is handed back to the
            # next real attempt.
            self.attempts -= 1
            return None
        except CompactorKilled as death:
            self.crashes += 1
            self.last_error = str(death)
            return None
        self.compactions += 1
        self.last_run_s = self.clock.monotonic()
        self.last_error = None
        return report

    def stats(self) -> dict:
        """Counters for dashboards and chaos assertions."""
        return {
            "attempts": self.attempts,
            "crashes": self.crashes,
            "compactions": self.compactions,
            "last_error": self.last_error,
        }
