"""Per-shard streaming lifecycles with attribute-range shard splitting.

:class:`ShardedLifecycleIndex` range-partitions the dataset on one int
attribute and runs an independent
:class:`~repro.lifecycle.manager.LifecycleIndex` per shard — each shard
has its own delta, tombstones, epochs, and compaction schedule, so a
write-hot range compacts without touching cold shards.  Reads
scatter-gather over the shards and fold the per-shard external-id
streams through the same streaming top-k merge the flat shard layer
uses.

When inserts concentrate into one attribute range, that shard's live
count outgrows the rest; :meth:`maybe_split` is the rebalance hook —
it splits the hottest shard at the **median** of its live route-key
values into two fresh lifecycles (built deterministically from the
live entities in global-id order) and rewrites the routing table.
Global external ids are stable across splits; only the internal
(shard, local) placement moves.
"""

from __future__ import annotations

import numpy as np

from repro.attributes.table import AttributeTable, ColumnKind
from repro.lifecycle.manager import LifecycleConfig, LifecycleIndex
from repro.lifecycle.delta import build_table, table_schema
from repro.shard.sharded import merge_topk
from repro.utils.clock import Clock

__all__ = ["ShardedLifecycleIndex"]


def _check_monotone_rev(rev: dict[int, int], where: str) -> None:
    """Enforce that a shard's local→global id mapping is strictly
    increasing in local id.

    The scatter-gather top-k contract rests on this invariant: each
    shard selects its k survivors on ``(distance, local external id)``
    ties, and only a strictly increasing mapping makes that selection
    identical to a selection on ``(distance, global id)`` — otherwise,
    when equal distances straddle the shard's k cut, the shard could
    drop the tie member with the *smallest* global id and the merged
    result would differ from the brute-force/``exact_search``
    tie-break contract.  The mapping is monotone by construction
    (inserts append on both sides; splits re-home members in ascending
    global order), so this check is a cheap structural tripwire at the
    two places the mapping is (re)built.
    """
    ordered = [rev[local] for local in sorted(rev)]
    if any(b <= a for a, b in zip(ordered, ordered[1:])):
        raise RuntimeError(
            f"shard local→global id mapping is not strictly increasing "
            f"after {where}; per-shard tie-breaking would no longer "
            "match the global (distance, global_id) selection contract"
        )


class ShardedLifecycleIndex:
    """Range-sharded lifecycles over one int route-key column.

    Build through :meth:`build`; the constructor wires pre-built
    pieces.  Not thread-safe for concurrent writers (one writer, many
    readers — the same contract as a single lifecycle).
    """

    def __init__(
        self,
        shards: list[LifecycleIndex],
        bounds: list[float],
        route_key: str,
        config: LifecycleConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        if len(bounds) != len(shards) - 1:
            raise ValueError(
                f"{len(shards)} shards need {len(shards) - 1} bounds, "
                f"got {len(bounds)}"
            )
        self.shards = shards
        self.bounds = [float(b) for b in bounds]  # ascending cut points
        self.route_key = route_key
        self.config = config or LifecycleConfig()
        self.clock = clock
        self._next_global = 0
        self._route: dict[int, tuple[int, int]] = {}   # global -> (shard, local)
        self._rev: list[dict[int, int]] = [dict() for _ in shards]
        self._dead: set[int] = set()   # globals physically dropped by splits
        self.splits = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        table: AttributeTable,
        route_key: str,
        n_shards: int = 4,
        params=None,
        metric="l2",
        seed: int = 0,
        n_workers: int = 1,
        config: LifecycleConfig | None = None,
        clock: Clock | None = None,
    ) -> "ShardedLifecycleIndex":
        """Range-partition on ``route_key`` quantiles and build shards."""
        if table.column_kind(route_key) is not ColumnKind.INT:
            raise ValueError(
                f"route_key {route_key!r} must be an int column"
            )
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        keys = np.asarray(table.column(route_key))
        if n_shards > 1:
            qs = np.linspace(0, 1, n_shards + 1)[1:-1]
            bounds = sorted(set(float(b) for b in np.quantile(keys, qs)))
        else:
            bounds = []
        schema = table_schema(table)
        rows = [table.row(i) for i in range(len(table))]

        buckets: list[list[int]] = [[] for _ in range(len(bounds) + 1)]
        for i, key in enumerate(keys.tolist()):
            buckets[int(np.searchsorted(bounds, key, side="right"))].append(i)

        shards: list[LifecycleIndex] = []
        sharded = cls.__new__(cls)
        sharded.bounds = list(bounds)
        sharded.route_key = route_key
        sharded.config = config or LifecycleConfig()
        sharded.clock = clock
        sharded._next_global = vectors.shape[0]
        sharded._route = {}
        sharded._rev = []
        sharded._dead = set()
        sharded.splits = 0
        for s, bucket in enumerate(buckets):
            sub_vectors = (
                vectors[np.asarray(bucket, dtype=np.intp)]
                if bucket else np.empty((0, vectors.shape[1]),
                                        dtype=np.float32)
            )
            sub_table = build_table(schema, [rows[i] for i in bucket])
            shard = LifecycleIndex.build(
                sub_vectors, sub_table, params=params, metric=metric,
                seed=seed, n_workers=n_workers, config=sharded.config,
                clock=clock,
            )
            shards.append(shard)
            rev: dict[int, int] = {}
            for local, global_id in enumerate(bucket):
                sharded._route[global_id] = (s, local)
                rev[local] = global_id
            _check_monotone_rev(rev, f"build of shard {s}")
            sharded._rev.append(rev)
        sharded.shards = shards
        return sharded

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def _shard_for_key(self, key) -> int:
        return int(np.searchsorted(self.bounds, float(key), side="right"))

    def live_count(self) -> int:
        """Live entities across every shard."""
        return sum(len(shard) for shard in self.shards)

    def shard_live_counts(self) -> list[int]:
        """Per-shard live counts, in shard order (split policy input)."""
        return [len(shard) for shard in self.shards]

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def insert(self, vector, row: dict) -> int:
        """Route one insert by its route-key value; returns global id."""
        if self.route_key not in row:
            raise ValueError(
                f"insert row is missing route key {self.route_key!r}"
            )
        s = self._shard_for_key(row[self.route_key])
        local = self.shards[s].insert(vector, row)
        global_id = self._next_global
        self._next_global += 1
        self._route[global_id] = (s, local)
        # Both ids are fresh maxima, so the shard's local→global
        # mapping stays strictly increasing (the tie-break invariant
        # _check_monotone_rev pins at build/split time).
        self._rev[s][local] = global_id
        return global_id

    def delete(self, global_id: int) -> bool:
        """Tombstone one entity by its global id."""
        global_id = int(global_id)
        if global_id in self._dead:
            return False   # physically dropped by a split; already dead
        if global_id not in self._route:
            raise KeyError(f"global id {global_id} was never inserted")
        s, local = self._route[global_id]
        return self.shards[s].delete(local)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def search(self, query, predicate, k: int, ef_search: int = 64):
        """Scatter-gather search; result ids are **global** ids."""
        streams = []
        ndist = 0
        epoch_total = 0
        for s, shard in enumerate(self.shards):
            result = shard.search(query, predicate, k, ef_search=ef_search)
            ndist += int(result.distance_computations)
            epoch_total += int(result.epoch)
            rev = self._rev[s]
            streams.append([
                (float(d), rev[int(local)])
                for d, local in zip(result.distances.tolist(),
                                    result.ids.tolist())
            ])
        # Each shard selected its k survivors on (distance, local id)
        # ties; because every shard's local→global mapping is strictly
        # increasing (enforced by _check_monotone_rev wherever the
        # mapping is built), that selection is identical to selecting
        # on (distance, global id) — a shard never drops a tie member
        # the global top-k needs, so the standard scatter-gather merge
        # argument holds exactly.  The mapped streams are already
        # sorted under that invariant; the re-sort is cheap insurance.
        streams = [sorted(stream) for stream in streams]
        merged = merge_topk(streams, k)
        from repro.lifecycle.epoch import LifecycleSearchResult

        return LifecycleSearchResult(
            ids=np.asarray([g for _, g in merged], dtype=np.intp),
            distances=np.asarray([d for d, _ in merged], dtype=np.float32),
            distance_computations=ndist,
            epoch=epoch_total,
        )

    def live_global_ids(self) -> np.ndarray:
        """Sorted global ids of every live entity."""
        out = []
        for s, shard in enumerate(self.shards):
            rev = self._rev[s]
            out.extend(rev[int(local)] for local in shard.live_ids().tolist())
        return np.asarray(sorted(out), dtype=np.int64)

    # ------------------------------------------------------------------
    # Compaction + split/rebalance
    # ------------------------------------------------------------------

    def compact_all(self, **kwargs):
        """Run the compaction policy on every shard (hot ones compact)."""
        return [shard.maybe_compact(**kwargs) for shard in self.shards]

    def maybe_split(
        self,
        max_live: int,
        seed: int = 0,
        n_workers: int = 1,
    ) -> dict | None:
        """Split the hottest shard when it outgrows ``max_live``.

        The split point is the median live route-key value; the two
        halves are rebuilt as fresh lifecycles over their live entities
        in ascending global-id order (deterministic for a fixed seed).
        Returns a report dict, or None when no shard is hot.
        """
        sizes = self.shard_live_counts()
        hottest = int(np.argmax(sizes))
        if sizes[hottest] <= max_live:
            return None
        return self.split_shard(hottest, seed=seed, n_workers=n_workers)

    def split_shard(
        self, shard_idx: int, seed: int = 0, n_workers: int = 1
    ) -> dict:
        """Split shard ``shard_idx`` at its live median route-key value."""
        shard = self.shards[shard_idx]
        rev = self._rev[shard_idx]
        live_local = shard.live_ids().tolist()
        if len(live_local) < 2:
            raise ValueError(
                f"shard {shard_idx} has {len(live_local)} live entities; "
                "nothing to split"
            )
        pairs = sorted(
            (rev[int(local)], int(local)) for local in live_local
        )
        keys = [
            float(shard.get_row(local)[self.route_key])
            for _, local in pairs
        ]
        cut = float(np.median(keys))
        lo_bound = self.bounds[shard_idx - 1] if shard_idx > 0 else None
        hi_bound = (self.bounds[shard_idx]
                    if shard_idx < len(self.bounds) else None)
        if (lo_bound is not None and cut <= lo_bound) or (
                hi_bound is not None and cut >= hi_bound):
            raise ValueError(
                f"median route key {cut} of shard {shard_idx} does not "
                f"fall strictly inside its range [{lo_bound}, {hi_bound}); "
                "the shard is hot on a single key and cannot be range-split"
            )
        # Routing is left-closed ([bound, next_bound)), so the left half
        # takes keys strictly below the cut.
        left = [(g, local) for (g, local), key in zip(pairs, keys)
                if key < cut]
        right = [(g, local) for (g, local), key in zip(pairs, keys)
                 if key >= cut]
        if not left or not right:
            raise ValueError(
                f"median split of shard {shard_idx} left an empty half "
                "(all live keys equal); cannot range-split"
            )

        schema = shard._schema
        halves: list[LifecycleIndex] = []
        half_revs: list[dict[int, int]] = []
        for members in (left, right):
            vectors = np.stack([
                shard.get_vector(local) for _, local in members
            ]).astype(np.float32)
            table = build_table(
                schema, [shard.get_row(local) for _, local in members]
            )
            half = LifecycleIndex.build(
                vectors, table, params=shard._base.params,
                metric=shard.metric, seed=seed, n_workers=n_workers,
                config=self.config, clock=self.clock,
            )
            halves.append(half)
            half_rev = {
                new_local: g for new_local, (g, _) in enumerate(members)
            }
            _check_monotone_rev(
                half_rev, f"split of shard {shard_idx}"
            )
            half_revs.append(half_rev)

        # The split shard's tombstoned entities are physically dropped
        # (splits rebuild from the live set); remember them so a repeat
        # delete stays an idempotent no-op.
        live_globals = {g for g, _ in pairs}
        for g in rev.values():
            if g not in live_globals:
                self._dead.add(g)
                self._route.pop(g, None)

        self.shards[shard_idx:shard_idx + 1] = halves
        self._rev[shard_idx:shard_idx + 1] = half_revs
        self.bounds.insert(shard_idx, cut)
        # Rewrite the global routing: shards after the split point move
        # one slot right; the split shard's members re-home.
        for s in range(shard_idx + 2, len(self.shards)):
            for local, g in self._rev[s].items():
                self._route[g] = (s, local)
        for offset, members in enumerate((left, right)):
            for new_local, (g, _) in enumerate(members):
                self._route[g] = (shard_idx + offset, new_local)
        self.splits += 1
        return {
            "shard": shard_idx,
            "cut": cut,
            "left_live": len(left),
            "right_live": len(right),
            "n_shards": len(self.shards),
        }

    def stats(self) -> dict:
        """Topology and per-shard counters for dashboards."""
        return {
            "n_shards": len(self.shards),
            "bounds": list(self.bounds),
            "route_key": self.route_key,
            "live": self.live_count(),
            "shard_live": self.shard_live_counts(),
            "splits": self.splits,
            "shards": [shard.stats() for shard in self.shards],
        }
