"""Epoch-manifest persistence for the streaming lifecycle.

Layout of a saved :class:`~repro.lifecycle.manager.LifecycleIndex`::

    <path>/
      manifest.json   # format version, epoch, next id, tombstones,
                      # file list + sha256 checksums
      base.npz        # the graph base via repro.persistence.save_index
      base_ids.npz    # base-internal -> external id translation
      delta.jsonl     # WAL-style journal of the un-compacted writes

The base archive is a plain :func:`repro.persistence.save_index` file
(independently loadable); the delta rides as a checksummed
:class:`~repro.lifecycle.journal.DeltaJournal` whose replay rebuilds
the write buffer exactly.  Loading verifies the manifest version and
every file's checksum — a broken piece raises
:class:`LifecycleLoadError` naming the exact file, mirroring the shard
manifest loader's operator-first contract.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.lifecycle.journal import DeltaJournal, JournalError
from repro.lifecycle.manager import LifecycleConfig, LifecycleIndex
from repro.utils.clock import Clock

__all__ = ["save_lifecycle", "load_lifecycle", "LifecycleLoadError"]

_LIFECYCLE_FORMAT_VERSION = 1
_LIFECYCLE_FORMAT = "repro-lifecycle-epoch"


class LifecycleLoadError(RuntimeError):
    """A lifecycle archive is incomplete or corrupt.

    The message names the offending file (and line, for journal
    records), so operators know exactly which piece to restore; the
    lifecycle is never partially constructed.
    """


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def save_lifecycle(lifecycle: LifecycleIndex, path) -> Path:
    """Serialize ``lifecycle``'s current epoch state into ``path``.

    Captures the write-side state under the writer lock: base,
    translation array, every un-compacted delta entry (sealed segments
    first, then the active buffer — i.e. external-id order), and the
    tombstone set.
    """
    from repro.persistence import save_index

    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)

    with lifecycle._lock:
        base = lifecycle._base
        base_ids = np.array(lifecycle._base_ids)
        segments = [*lifecycle._sealed, lifecycle._delta]
        entries = [
            entry for segment in segments
            for entry in segment.freeze().entries()
        ]
        tombstones = sorted(int(t) for t in lifecycle._tombstones)
        next_external_id = lifecycle._next_external_id
        epoch = lifecycle._published.epoch

    save_index(base, root / "base.npz")
    np.savez_compressed(root / "base_ids.npz", base_ids=base_ids)

    journal_path = root / "delta.jsonl"
    journal_path.write_text("", encoding="utf-8")
    journal = DeltaJournal(journal_path)
    journal.append_many(
        DeltaJournal.insert_record(seq, ext, vec, row)
        for seq, (ext, vec, row) in enumerate(entries)
    )

    files = ["base.npz", "base_ids.npz", "delta.jsonl"]
    manifest = {
        "format": _LIFECYCLE_FORMAT,
        "format_version": _LIFECYCLE_FORMAT_VERSION,
        "epoch": int(epoch),
        "next_external_id": int(next_external_id),
        "n_base": int(base_ids.shape[0]),
        "n_delta": len(entries),
        "tombstones": tombstones,
        "files": files,
        "checksums": {name: _sha256(root / name) for name in files},
    }
    (root / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n")
    return root


def _verified(root: Path, name: str, checksums: dict) -> Path:
    target = root / name
    if not target.exists():
        raise LifecycleLoadError(
            f"lifecycle archive {root} is missing {name!r}; restore the "
            "file or re-save the lifecycle"
        )
    expected = checksums.get(name)
    if expected is not None and _sha256(target) != expected:
        raise LifecycleLoadError(
            f"checksum mismatch for {target}; the file is corrupt "
            f"(expected sha256 {expected[:12]}...)"
        )
    return target


def load_lifecycle(
    path,
    config: LifecycleConfig | None = None,
    clock: Clock | None = None,
) -> LifecycleIndex:
    """Restore a lifecycle saved with :func:`save_lifecycle`.

    Raises:
        LifecycleLoadError: when the manifest is absent/invalid or any
            referenced file is missing, fails its checksum, or holds a
            corrupt journal record.
    """
    from repro.persistence import load_index

    root = Path(path)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise LifecycleLoadError(
            f"lifecycle archive {root} is missing 'manifest.json'"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as err:
        raise LifecycleLoadError(
            f"{manifest_path} is not valid JSON: {err.msg}"
        ) from err
    if manifest.get("format") != _LIFECYCLE_FORMAT:
        raise LifecycleLoadError(
            f"{manifest_path} has format {manifest.get('format')!r}, "
            f"expected {_LIFECYCLE_FORMAT!r}"
        )
    if manifest.get("format_version") != _LIFECYCLE_FORMAT_VERSION:
        raise LifecycleLoadError(
            f"{manifest_path} has format_version "
            f"{manifest.get('format_version')!r}, expected "
            f"{_LIFECYCLE_FORMAT_VERSION}"
        )
    checksums = manifest.get("checksums", {})

    base = load_index(_verified(root, "base.npz", checksums))
    with np.load(_verified(root, "base_ids.npz", checksums)) as payload:
        base_ids = np.asarray(payload["base_ids"], dtype=np.int64)
    if base_ids.shape[0] != len(base):
        raise LifecycleLoadError(
            f"base_ids.npz covers {base_ids.shape[0]} nodes but base.npz "
            f"holds {len(base)}; the archive is inconsistent"
        )

    journal = DeltaJournal(_verified(root, "delta.jsonl", checksums))
    try:
        records = journal.replay()
    except JournalError as err:
        raise LifecycleLoadError(str(err)) from err
    entries = []
    for record in records:
        if record.get("op") != "insert":
            raise LifecycleLoadError(
                f"delta.jsonl: unexpected op {record.get('op')!r} in a "
                "delta journal (deletes live in the manifest tombstones)"
            )
        entries.append((
            int(record["external_id"]),
            np.asarray(record["vector"], dtype=np.float32),
            dict(record["row"]),
        ))
    if len(entries) != manifest.get("n_delta"):
        raise LifecycleLoadError(
            f"delta.jsonl holds {len(entries)} records but the manifest "
            f"declares {manifest.get('n_delta')}; the journal is truncated"
        )

    return LifecycleIndex._restore(
        base=base,
        base_ids=base_ids,
        delta_entries=entries,
        tombstones=set(int(t) for t in manifest.get("tombstones", [])),
        next_external_id=int(manifest["next_external_id"]),
        epoch=int(manifest["epoch"]),
        config=config,
        clock=clock,
    )
