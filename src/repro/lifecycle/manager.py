"""The streaming index lifecycle: delta writes, epochs, online compaction.

:class:`LifecycleIndex` turns a frozen ACORN-family index into a
continuously writable one with LSM-style structure:

- **writes** (``insert``/``delete``) land in a small mutable
  :class:`~repro.lifecycle.delta.DeltaIndex` and an external tombstone
  set, under a single writer lock;
- **readers** search published :class:`~repro.lifecycle.epoch
  .EpochSnapshot` objects — immutable (base, base_ids, delta views,
  tombstones) tuples swapped in atomically by ``publish()``;
- **compaction** (:meth:`compact`) seals the delta, rebuilds the base
  over the live set with the wave-parallel bulk builder, and installs
  the result as the next epoch without ever blocking readers — the
  online counterpart of :func:`repro.core.maintenance.rebuild`, with
  the same id-remap contract.

Determinism contract (what the lifecycle-equivalence harness pins):
external ids are allocated in write order; compaction feeds the live
set to the builder in ascending external-id order with a fixed seed,
which is byte-identical to ``rebuild()`` on an offline index holding
the same history.  Two lifecycles replaying the same op sequence
publish identical epochs.

Crash safety: a compaction that dies after the cut leaves its sealed
segment in place — readers keep the old epoch (every entity still
reachable, ``recall_ceiling`` stays 1.0) and a respawned compactor
re-seals and retries.  No partially built epoch is ever visible.
"""

from __future__ import annotations

import dataclasses
import threading

import numpy as np

from repro.core.acorn import AcornIndex, AcornOneIndex
from repro.engine.batching import BatchSearchMixin
from repro.lifecycle.delta import DeltaIndex, build_table, table_schema
from repro.lifecycle.epoch import EpochSnapshot, LifecycleSearchResult
from repro.utils.clock import Clock, SystemClock

__all__ = [
    "CompactionInProgress", "CompactionReport", "LifecycleConfig",
    "LifecycleIndex",
]


class CompactionInProgress(RuntimeError):
    """Raised by :meth:`LifecycleIndex.compact` when another compaction
    holds the merge.  A :class:`RuntimeError` subclass so existing
    callers keep working; schedulers (``maybe_compact``, the background
    compactor's ``tick``) catch it and treat the attempt as a no-op —
    losing the race is routine, not a failure."""


@dataclasses.dataclass(frozen=True)
class LifecycleConfig:
    """Knobs of the streaming lifecycle.

    Attributes:
        auto_publish: publish a new epoch after every successful write
            (the strict read-your-writes mode the equivalence harness
            uses).  False batches writes until an explicit
            :meth:`LifecycleIndex.publish`.
        build_seed: level-assignment seed for compaction rebuilds; part
            of the determinism contract with offline ``rebuild()``.
        n_workers: build parallelism for compaction (1 = sequential
            reference; >1 = the PR 5 wave-parallel bulk builder).
        compact_delta_fraction: delta size as a fraction of base size
            beyond which the compaction policy fires.
        compact_min_delta: absolute delta size floor for the policy.
        compact_tombstone_fraction: tombstoned fraction of the base
            beyond which the policy fires.
        min_compaction_interval_s: policy cool-down between compactions
            (measured on the lifecycle's pluggable clock).
    """

    auto_publish: bool = True
    build_seed: int = 0
    n_workers: int = 1
    compact_delta_fraction: float = 0.25
    compact_min_delta: int = 64
    compact_tombstone_fraction: float = 0.25
    min_compaction_interval_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.compact_min_delta < 1:
            raise ValueError(
                f"compact_min_delta must be >= 1, got {self.compact_min_delta}"
            )


@dataclasses.dataclass(frozen=True)
class CompactionReport:
    """Outcome of one successful online compaction.

    Attributes:
        epoch_before: epoch current when the cut was taken.
        epoch_after: epoch that published the new base.
        n_live: entities in the new base.
        n_dropped: tombstoned entities physically removed.
        n_merged: delta entries folded into the base.
        id_map: int64 array over the external-id space at the cut;
            ``id_map[external_id]`` is the entity's internal id in the
            new base, or -1 if it was dead at the cut — the same remap
            contract :func:`repro.core.maintenance.rebuild` returns for
            offline rebuilds.
        duration_s: clock time the compaction took.
    """

    epoch_before: int
    epoch_after: int
    n_live: int
    n_dropped: int
    n_merged: int
    id_map: np.ndarray
    duration_s: float


class LifecycleIndex(BatchSearchMixin):
    """A log-structured, epoch-published view over an ACORN-family base.

    Args:
        base: the initial graph index (any ``AcornIndex`` subclass).
            Existing tombstones on it are folded into the lifecycle's
            tombstone set.  The lifecycle owns the base from here on.
        config: lifecycle knobs (:class:`LifecycleConfig`).
        clock: time source for compaction policy and reports; a
            :class:`~repro.utils.clock.FakeClock` makes every timing
            decision deterministic.
    """

    def __init__(
        self,
        base: AcornIndex,
        config: LifecycleConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or LifecycleConfig()
        self.clock = clock or SystemClock()
        self._lock = threading.RLock()
        self._base = base
        self._base_ids = np.arange(len(base), dtype=np.int64)
        self._schema = table_schema(base.table)
        self._metric = base.metric
        self._dim = base.store.dim
        self._sealed: list[DeltaIndex] = []
        self._delta = self._fresh_delta()
        self._tombstones: set[int] = {
            int(node) for node in range(len(base)) if base.is_deleted(node)
        }
        self._next_external_id = len(base)
        self._epoch = 0
        self._compacting = False
        self._compactions = 0
        self._last_compaction_s: float | None = None
        self._published = self._make_snapshot(0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        vectors,
        table,
        params=None,
        metric="l2",
        seed: int = 0,
        n_workers: int = 1,
        quantization=None,
        index_cls: type[AcornIndex] = AcornIndex,
        config: LifecycleConfig | None = None,
        clock: Clock | None = None,
    ) -> "LifecycleIndex":
        """Build a lifecycle from scratch over an initial dataset."""
        base = index_cls.build(
            vectors, table, params=params, metric=metric, seed=seed,
            n_workers=n_workers, quantization=quantization,
        )
        return cls(base, config=config, clock=clock)

    def _fresh_delta(self) -> DeltaIndex:
        return DeltaIndex(self._dim, self._schema, metric=self._metric)

    # ------------------------------------------------------------------
    # Introspection (engine integration)
    # ------------------------------------------------------------------

    @property
    def table(self):
        """The current base's attribute table (predicate compilation
        target for the batch engine; delta rows recompile per
        snapshot)."""
        return self._published.base.table

    @property
    def metric(self):
        return self._metric

    @property
    def current_epoch(self) -> int:
        return self._published.epoch

    @property
    def next_external_id(self) -> int:
        return self._next_external_id

    def __len__(self) -> int:
        """Live entity count at the published epoch."""
        return self._published.live_count()

    def delta_size(self) -> int:
        """Rows awaiting compaction (active delta + sealed segments)."""
        with self._lock:
            return len(self._delta) + sum(len(s) for s in self._sealed)

    def tombstone_count(self) -> int:
        """Deletes not yet folded away by a compaction."""
        with self._lock:
            return len(self._tombstones)

    def live_ids(self) -> np.ndarray:
        """Sorted external ids live at the published epoch."""
        return self._published.live_ids()

    def get_vector(self, external_id: int) -> np.ndarray:
        """The vector of ``external_id`` (live or tombstoned)."""
        external_id = int(external_id)
        with self._lock:
            pos = np.searchsorted(self._base_ids, external_id)
            if (pos < self._base_ids.shape[0]
                    and self._base_ids[pos] == external_id):
                return np.array(self._base.store.vectors[pos])
            for segment in (*self._sealed, self._delta):
                if external_id in segment:
                    return np.array(segment.vector_of(external_id))
        raise KeyError(
            f"external id {external_id} is not resident (never inserted, "
            "or deleted and compacted away)"
        )

    def get_row(self, external_id: int) -> dict:
        """The attribute row of ``external_id``."""
        external_id = int(external_id)
        with self._lock:
            pos = np.searchsorted(self._base_ids, external_id)
            if (pos < self._base_ids.shape[0]
                    and self._base_ids[pos] == external_id):
                return self._base.table.row(int(pos))
            for segment in (*self._sealed, self._delta):
                if external_id in segment:
                    return segment.row_of(external_id)
        raise KeyError(
            f"external id {external_id} is not resident (never inserted, "
            "or deleted and compacted away)"
        )

    def is_deleted(self, external_id: int) -> bool:
        """Whether ``external_id`` is currently tombstoned."""
        with self._lock:
            return int(external_id) in self._tombstones

    def stats(self) -> dict:
        """Operational counters for dashboards and the bench CLI."""
        with self._lock:
            snap = self._published
            return {
                "epoch": snap.epoch,
                "base_size": int(self._base_ids.shape[0]),
                "delta_size": len(self._delta) + sum(
                    len(s) for s in self._sealed
                ),
                "sealed_segments": len(self._sealed),
                "tombstones": len(self._tombstones),
                "live": snap.live_count(),
                "next_external_id": self._next_external_id,
                "compactions": self._compactions,
                "compacting": self._compacting,
                "readers": snap.readers,
            }

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def insert(self, vector, row: dict | None = None) -> int:
        """Admit one entity; returns its stable external id."""
        with self._lock:
            external_id = self._next_external_id
            self._delta.insert(external_id, vector, row or {})
            self._next_external_id += 1
            if self.config.auto_publish:
                self._publish_locked()
            return external_id

    def delete(self, external_id: int) -> bool:
        """Tombstone one entity.  Returns False if already deleted —
        including ids whose tombstone a past compaction already folded
        away (the entity is gone; re-tombstoning it would poison the
        next compaction's ledger).

        Raises:
            KeyError: if ``external_id`` was never allocated.
        """
        external_id = int(external_id)
        with self._lock:
            if not 0 <= external_id < self._next_external_id:
                raise KeyError(
                    f"external id {external_id} was never inserted "
                    f"(ids run [0, {self._next_external_id}))"
                )
            if external_id in self._tombstones:
                return False
            if not self._is_resident_locked(external_id):
                return False
            self._tombstones.add(external_id)
            if self.config.auto_publish:
                self._publish_locked()
            return True

    def _is_resident_locked(self, external_id: int) -> bool:
        """True when the entity physically exists in base or a delta."""
        pos = np.searchsorted(self._base_ids, external_id)
        if (pos < self._base_ids.shape[0]
                and self._base_ids[pos] == external_id):
            return True
        return any(
            external_id in segment
            for segment in (*self._sealed, self._delta)
        )

    # ------------------------------------------------------------------
    # Epoch publication
    # ------------------------------------------------------------------

    def _make_snapshot(self, epoch: int) -> EpochSnapshot:
        views = tuple(
            segment.freeze()
            for segment in (*self._sealed, self._delta)
            if len(segment)
        )
        return EpochSnapshot(
            epoch=epoch,
            base=self._base,
            base_ids=self._base_ids,
            deltas=views,
            tombstones=frozenset(self._tombstones),
        )

    def _publish_locked(self) -> EpochSnapshot:
        self._epoch += 1
        snapshot = self._make_snapshot(self._epoch)
        self._published = snapshot
        return snapshot

    def publish(self) -> EpochSnapshot:
        """Publish the current write-side state as a new epoch."""
        with self._lock:
            return self._publish_locked()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def acquire_read_snapshot(self) -> EpochSnapshot:
        """Pin the published epoch for a batch of reads.

        The batch engine calls this per :class:`QueryBatch` so every
        query in the batch sees one consistent epoch even while writes
        publish newer ones concurrently.
        """
        with self._lock:
            snapshot = self._published
            snapshot._readers += 1
            return snapshot

    def release_read_snapshot(self, snapshot: EpochSnapshot) -> None:
        """Drop the reader refcount taken by ``acquire_read_snapshot``."""
        with self._lock:
            if snapshot._readers <= 0:
                raise RuntimeError(
                    "release_read_snapshot without matching acquire"
                )
            snapshot._readers -= 1

    def freeze(self) -> None:
        """Engine hook: warm the published base's frozen adjacency."""
        base = self._published.base
        if base is not None and len(base):
            base.freeze()

    def search(
        self, query, predicate, k: int, ef_search: int = 64
    ) -> LifecycleSearchResult:
        """Search the currently published epoch.  Ids are external."""
        return self._published.search(query, predicate, k,
                                      ef_search=ef_search)

    # ------------------------------------------------------------------
    # Online compaction
    # ------------------------------------------------------------------

    def should_compact(self) -> bool:
        """Whether the size/tombstone policy asks for a compaction."""
        with self._lock:
            if self._compacting:
                return False
            base_n = int(self._base_ids.shape[0])
            delta_n = len(self._delta) + sum(len(s) for s in self._sealed)
            if delta_n >= max(
                self.config.compact_min_delta,
                int(self.config.compact_delta_fraction * max(base_n, 1)),
            ):
                return True
            dead_in_base = sum(
                1 for t in self._tombstones
                if t < self._next_external_id and self._in_base(t)
            )
            return (
                base_n > 0
                and dead_in_base / base_n
                >= self.config.compact_tombstone_fraction
            )

    def _in_base(self, external_id: int) -> bool:
        pos = np.searchsorted(self._base_ids, external_id)
        return bool(
            pos < self._base_ids.shape[0]
            and self._base_ids[pos] == external_id
        )

    def compact(
        self,
        seed: int | None = None,
        n_workers: int | None = None,
        on_stage=None,
    ) -> CompactionReport:
        """Merge sealed deltas + live base into a fresh base, online.

        Readers are never blocked: the build runs off to the side over
        an immutable cut, and the new epoch installs atomically at the
        end.  If the build dies (compactor crash, injected fault), the
        cut's sealed segment stays sealed and the old epoch remains
        fully live — a respawned compactor simply calls ``compact()``
        again.

        Args:
            seed: build seed (default ``config.build_seed``).  Equal
                seeds make online compaction byte-identical to offline
                :func:`repro.core.maintenance.rebuild` over the same
                history.
            n_workers: build parallelism (default ``config.n_workers``).
            on_stage: optional hook called with ``"cut"``, ``"build"``,
                ``"install"`` as the compaction passes each stage —
                the chaos harness's fault-injection point.

        Raises:
            CompactionInProgress: if a compaction is already in
                progress.
        """
        seed = self.config.build_seed if seed is None else int(seed)
        n_workers = (self.config.n_workers if n_workers is None
                     else int(n_workers))
        started = self.clock.monotonic()
        with self._lock:
            if self._compacting:
                raise CompactionInProgress(
                    "compaction already in progress"
                )
            self._compacting = True
        try:
            # Stage 1 — cut: seal the active delta and snapshot the
            # merge inputs.  Everything after this reads only the cut.
            with self._lock:
                if len(self._delta):
                    self._sealed.append(self._delta)
                    self._delta = self._fresh_delta()
                sealed = list(self._sealed)
                base = self._base
                base_ids = self._base_ids
                cut_tombstones = frozenset(self._tombstones)
                cut_next = self._next_external_id
                epoch_before = self._published.epoch
            if on_stage is not None:
                on_stage("cut")

            # Assemble the live set in ascending external-id order:
            # base-internal order (base_ids is sorted), then sealed
            # segments oldest-first (ids only ever grow).  This is the
            # exact order rebuild() feeds the builder for an offline
            # index with the same history — the equivalence contract.
            alive_internal = [
                node for node in range(len(base))
                if int(base_ids[node]) not in cut_tombstones
                and not base.is_deleted(node)
            ]
            vectors = [base.store.vectors[node] for node in alive_internal]
            rows = [base.table.row(node) for node in alive_internal]
            external = [int(base_ids[node]) for node in alive_internal]
            n_merged = 0
            for segment in sealed:
                for ext, vec, row in segment.freeze().entries():
                    if ext in cut_tombstones:
                        continue
                    vectors.append(vec)
                    rows.append(row)
                    external.append(ext)
                    n_merged += 1
            if on_stage is not None:
                on_stage("build")

            new_table = build_table(self._schema, rows)
            vec_matrix = (
                np.stack(vectors).astype(np.float32)
                if vectors else np.empty((0, self._dim), dtype=np.float32)
            )
            if isinstance(base, AcornOneIndex):
                new_base = type(base).build(
                    vec_matrix, new_table, m=base.params.m,
                    ef_construction=base.params.ef_construction,
                    metric=base.metric, seed=seed,
                )
            else:
                new_base = type(base).build(
                    vec_matrix, new_table, params=base.params,
                    metric=base.metric, seed=seed, n_workers=n_workers,
                )
            if base.quantization is not None:
                new_base.enable_quantization(base.quantization)
            if on_stage is not None:
                on_stage("install")

            id_map = np.full(cut_next, -1, dtype=np.int64)
            new_base_ids = np.asarray(external, dtype=np.int64)
            id_map[new_base_ids] = np.arange(
                new_base_ids.shape[0], dtype=np.int64
            )

            # Stage 3 — install: atomically swap the base, drop the
            # consumed segments and the physically removed tombstones,
            # publish.  Old snapshots keep their own arrays untouched.
            with self._lock:
                consumed = {id(segment) for segment in sealed}
                self._sealed = [
                    segment for segment in self._sealed
                    if id(segment) not in consumed
                ]
                self._base = new_base
                self._base_ids = new_base_ids
                self._tombstones -= set(cut_tombstones)
                self._compactions += 1
                self._last_compaction_s = self.clock.monotonic()
                snapshot = self._publish_locked()
            n_dropped = sum(1 for t in cut_tombstones if t < cut_next)
            return CompactionReport(
                epoch_before=epoch_before,
                epoch_after=snapshot.epoch,
                n_live=int(new_base_ids.shape[0]),
                n_dropped=n_dropped,
                n_merged=n_merged,
                id_map=id_map,
                duration_s=self.clock.monotonic() - started,
            )
        finally:
            with self._lock:
                self._compacting = False

    def maybe_compact(self, **kwargs) -> CompactionReport | None:
        """Run :meth:`compact` if the policy fires (cool-down aware).

        Returns None when the policy holds it back — including losing
        the admission race to a concurrent compaction (the policy check
        drops the lock before :meth:`compact` reacquires it)."""
        with self._lock:
            if self._compacting:
                return None
            if self._last_compaction_s is not None and (
                self.clock.monotonic() - self._last_compaction_s
                < self.config.min_compaction_interval_s
            ):
                return None
        if not self.should_compact():
            return None
        try:
            return self.compact(**kwargs)
        except CompactionInProgress:
            return None

    # ------------------------------------------------------------------
    # Persistence handoff (see repro.lifecycle.persistence)
    # ------------------------------------------------------------------

    @classmethod
    def _restore(
        cls,
        base: AcornIndex,
        base_ids: np.ndarray,
        delta_entries: list[tuple[int, np.ndarray, dict]],
        tombstones: set[int],
        next_external_id: int,
        epoch: int,
        config: LifecycleConfig | None = None,
        clock: Clock | None = None,
    ) -> "LifecycleIndex":
        """Reconstruct a lifecycle from persisted state (internal)."""
        lifecycle = cls.__new__(cls)
        lifecycle.config = config or LifecycleConfig()
        lifecycle.clock = clock or SystemClock()
        lifecycle._lock = threading.RLock()
        lifecycle._base = base
        lifecycle._base_ids = np.asarray(base_ids, dtype=np.int64)
        lifecycle._schema = table_schema(base.table)
        lifecycle._metric = base.metric
        lifecycle._dim = base.store.dim
        lifecycle._sealed = []
        lifecycle._delta = lifecycle._fresh_delta()
        for ext, vec, row in delta_entries:
            lifecycle._delta.insert(ext, vec, row)
        lifecycle._tombstones = set(int(t) for t in tombstones)
        lifecycle._next_external_id = int(next_external_id)
        lifecycle._epoch = int(epoch)
        lifecycle._compacting = False
        lifecycle._compactions = 0
        lifecycle._last_compaction_s = None
        lifecycle._published = lifecycle._make_snapshot(int(epoch))
        return lifecycle
