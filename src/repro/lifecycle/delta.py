"""Mutable write buffer of the streaming index lifecycle.

A :class:`DeltaIndex` absorbs recent inserts in arrival order.  It is
deliberately structureless — a row store of (external id, vector,
attribute row) triples — because the delta stays small by design: the
background compactor folds it into the graph base long before a brute
force scan over it costs anything.  ``freeze()`` snapshots the buffer
into an immutable :class:`DeltaView` that epoch snapshots search
exactly (brute force over the passing rows), so delta results carry no
approximation: recall loss can only come from the graph base, never
from recency.

External ids are allocated by the owning
:class:`~repro.lifecycle.manager.LifecycleIndex` and are strictly
increasing, so a delta's entries are always sorted by external id —
the property the compactor leans on to keep the merged build order
identical to :func:`repro.core.maintenance.rebuild`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.attributes.table import AttributeTable, ColumnKind
from repro.predicates.base import CompiledPredicate, Predicate
from repro.vectors import Metric, VectorStore

__all__ = ["DeltaIndex", "DeltaView", "table_schema", "build_table"]


def table_schema(table: AttributeTable) -> list[tuple[str, ColumnKind]]:
    """The (name, kind) column signature of ``table``, in column order.

    Lifecycle inserts must supply a value for every schema column, so
    delta rows always compile against the same predicates as the base.
    """
    return [(name, table.column_kind(name)) for name in table.column_names]


def build_table(
    schema: list[tuple[str, ColumnKind]], rows: list[dict]
) -> AttributeTable:
    """Materialize an :class:`AttributeTable` from per-entity row dicts."""
    out = AttributeTable(len(rows))
    for name, kind in schema:
        values = [row[name] for row in rows]
        if kind is ColumnKind.INT:
            out.add_int_column(name, np.asarray(values, dtype=np.int64))
        elif kind is ColumnKind.FLOAT:
            out.add_float_column(name, np.asarray(values, dtype=np.float64))
        elif kind is ColumnKind.STRING:
            out.add_string_column(name, [str(v) for v in values])
        else:
            out.add_keywords_column(name, [list(v) for v in values])
    return out


def check_row(schema: list[tuple[str, ColumnKind]], row: dict) -> dict:
    """Validate one insert's attribute row against the schema.

    Every schema column must be present; unknown keys are rejected so a
    typo'd column name fails loudly instead of silently never matching
    any predicate.
    """
    names = {name for name, _ in schema}
    missing = names - row.keys()
    if missing:
        raise ValueError(
            f"insert row missing attribute columns: {sorted(missing)}"
        )
    unknown = row.keys() - names
    if unknown:
        raise ValueError(
            f"insert row has unknown attribute columns: {sorted(unknown)}"
        )
    return dict(row)


@dataclasses.dataclass(frozen=True)
class DeltaView:
    """An immutable, exactly-searchable snapshot of a delta segment.

    Attributes:
        external_ids: (n,) int64 external id per entry, strictly
            ascending (write order).
        vectors: (n, dim) float32 matrix, read-only.
        table: attribute rows aligned with ``external_ids``.
        store: vector store over ``vectors`` (distance arithmetic).
    """

    external_ids: np.ndarray
    vectors: np.ndarray
    table: AttributeTable
    store: VectorStore

    def __len__(self) -> int:
        return int(self.external_ids.shape[0])

    def topk(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        tombstones,
    ) -> tuple[list[tuple[float, int]], int]:
        """Exact top-k over live, passing delta entries.

        Returns a ``(distance, external_id)`` stream sorted ascending
        (ties on id) ready for the shard-layer streaming merge, plus
        the number of distances evaluated.
        """
        if len(self) == 0 or k <= 0:
            return [], 0
        raw = (predicate.predicate
               if isinstance(predicate, CompiledPredicate) else predicate)
        mask = np.asarray(raw.mask(self.table), dtype=bool).copy()
        if tombstones:
            for pos, ext in enumerate(self.external_ids.tolist()):
                if ext in tombstones:
                    mask[pos] = False
        passing = np.flatnonzero(mask)
        if passing.size == 0:
            return [], 0
        computer = self.store.computer()
        q = computer.set_query(query)
        dists = computer.distances_to(q, passing)
        order = np.lexsort((self.external_ids[passing], dists))[:k]
        stream = [
            (float(dists[i]), int(self.external_ids[passing[i]]))
            for i in order.tolist()
        ]
        return stream, int(passing.size)

    def entries(self):
        """Iterate ``(external_id, vector, row)`` in write order."""
        for pos in range(len(self)):
            yield (
                int(self.external_ids[pos]),
                self.vectors[pos],
                self.table.row(pos),
            )


class DeltaIndex:
    """The mutable insert buffer: an append-only row store.

    Owned and locked by :class:`~repro.lifecycle.manager.LifecycleIndex`;
    this class itself does no synchronization.  Deletes never touch the
    delta — the lifecycle's external tombstone set hides entries at
    search time, uniformly with base entities.
    """

    def __init__(
        self,
        dim: int,
        schema: list[tuple[str, ColumnKind]],
        metric: "Metric | str" = Metric.L2,
    ) -> None:
        self.dim = int(dim)
        self.schema = list(schema)
        self.metric = metric
        self._external_ids: list[int] = []
        self._vectors: list[np.ndarray] = []
        self._rows: list[dict] = []
        self._positions: dict[int, int] = {}
        self._view: DeltaView | None = None

    def __len__(self) -> int:
        return len(self._external_ids)

    def __contains__(self, external_id: int) -> bool:
        return int(external_id) in self._positions

    def insert(self, external_id: int, vector: np.ndarray, row: dict) -> None:
        """Append one entity.  Ids must arrive strictly ascending."""
        external_id = int(external_id)
        if self._external_ids and external_id <= self._external_ids[-1]:
            raise ValueError(
                f"external id {external_id} not ascending (last was "
                f"{self._external_ids[-1]})"
            )
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(
                f"vector has dim {vector.shape[0]}, lifecycle has dim "
                f"{self.dim}"
            )
        self._positions[external_id] = len(self._external_ids)
        self._external_ids.append(external_id)
        self._vectors.append(vector.copy())
        self._rows.append(check_row(self.schema, row))
        self._view = None

    def vector_of(self, external_id: int) -> np.ndarray:
        """The stored vector for ``external_id`` (must be resident)."""
        return self._vectors[self._positions[int(external_id)]]

    def row_of(self, external_id: int) -> dict:
        """A copy of the attribute row for ``external_id``."""
        return dict(self._rows[self._positions[int(external_id)]])

    def freeze(self) -> DeltaView:
        """Snapshot the buffer into an immutable :class:`DeltaView`.

        Cached until the next :meth:`insert`, so repeated epoch
        publications over an idle delta share one view.
        """
        if self._view is None:
            n = len(self._external_ids)
            vectors = (
                np.stack(self._vectors).astype(np.float32)
                if n else np.empty((0, self.dim), dtype=np.float32)
            )
            vectors.setflags(write=False)
            external_ids = np.asarray(self._external_ids, dtype=np.int64)
            external_ids.setflags(write=False)
            self._view = DeltaView(
                external_ids=external_ids,
                vectors=vectors,
                table=build_table(self.schema, self._rows),
                store=VectorStore.from_array(
                    vectors.reshape(n, self.dim), metric=self.metric
                ),
            )
        return self._view
