"""Columnar storage for structured attributes.

Each dataset entity ``e_i = (x_i, a_i)`` (paper §3.1) carries an
attribute tuple ``a_i``.  The :class:`AttributeTable` stores those tuples
column-wise so predicates can be evaluated as one vectorized pass per
column: integer/date columns as numpy arrays, string columns as numpy
object arrays, and keyword-list columns as a CSR-style (offsets, tokens)
layout with an interned vocabulary, which makes ``contains`` evaluation a
bitset union over posting lists.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence

import numpy as np


class ColumnKind(enum.Enum):
    """Physical layouts an attribute column can use."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    KEYWORDS = "keywords"


class _KeywordColumn:
    """CSR-encoded lists of interned keyword tokens."""

    def __init__(self, lists: Sequence[Iterable[str]]) -> None:
        self.vocab: dict[str, int] = {}
        tokens: list[int] = []
        offsets = np.zeros(len(lists) + 1, dtype=np.int64)
        for row, kws in enumerate(lists):
            for kw in kws:
                token = self.vocab.setdefault(kw, len(self.vocab))
                tokens.append(token)
            offsets[row + 1] = len(tokens)
        self.offsets = offsets
        self.tokens = np.asarray(tokens, dtype=np.int64)
        # Posting lists: rows containing each token, for inverted lookups.
        row_of_token = np.repeat(
            np.arange(len(lists), dtype=np.int64), np.diff(offsets)
        )
        order = np.argsort(self.tokens, kind="stable")
        self._sorted_rows = row_of_token[order]
        self._sorted_tokens = self.tokens[order]
        self._posting_bounds = np.searchsorted(
            self._sorted_tokens, np.arange(len(self.vocab) + 1)
        )

    def __len__(self) -> int:
        return self.offsets.shape[0] - 1

    def row_keywords(self, row: int) -> list[str]:
        inv = {v: k for k, v in self.vocab.items()}
        lo, hi = self.offsets[row], self.offsets[row + 1]
        return [inv[t] for t in self.tokens[lo:hi]]

    def rows_containing(self, keyword: str) -> np.ndarray:
        """Rows whose list contains ``keyword`` (empty if unseen)."""
        token = self.vocab.get(keyword)
        if token is None:
            return np.empty(0, dtype=np.int64)
        lo, hi = self._posting_bounds[token], self._posting_bounds[token + 1]
        return self._sorted_rows[lo:hi]

    def mask_containing_any(self, keywords: Iterable[str]) -> np.ndarray:
        """Boolean mask of rows containing at least one of ``keywords``."""
        mask = np.zeros(len(self), dtype=bool)
        for kw in keywords:
            mask[self.rows_containing(kw)] = True
        return mask


class AttributeTable:
    """A named collection of attribute columns over ``n`` entities.

    Columns are added once (all with the same length) and then read by
    predicates.  ``table.column_kind(name)`` lets predicate code verify
    it is pointed at a compatible layout before evaluating.
    """

    def __init__(self, num_rows: int) -> None:
        if num_rows < 0:
            raise ValueError(f"num_rows must be non-negative, got {num_rows}")
        self.num_rows = int(num_rows)
        self._columns: dict[str, tuple[ColumnKind, object]] = {}

    def __len__(self) -> int:
        return self.num_rows

    @property
    def column_names(self) -> list[str]:
        """Names of all columns, in insertion order."""
        return list(self._columns)

    def _check_new(self, name: str, length: int) -> None:
        if name in self._columns:
            raise ValueError(f"column {name!r} already exists")
        if length != self.num_rows:
            raise ValueError(
                f"column {name!r} has {length} rows, table has {self.num_rows}"
            )

    def add_int_column(self, name: str, values) -> None:
        """Add an integer column (also used for dates/years)."""
        values = np.asarray(values, dtype=np.int64)
        self._check_new(name, values.shape[0])
        self._columns[name] = (ColumnKind.INT, values)

    def add_float_column(self, name: str, values) -> None:
        """Add a float column (e.g. prices)."""
        values = np.asarray(values, dtype=np.float64)
        self._check_new(name, values.shape[0])
        self._columns[name] = (ColumnKind.FLOAT, values)

    def add_string_column(self, name: str, values: Sequence[str]) -> None:
        """Add a string column (e.g. captions for regex predicates)."""
        arr = np.asarray(list(values), dtype=object)
        self._check_new(name, arr.shape[0])
        self._columns[name] = (ColumnKind.STRING, arr)

    def add_keywords_column(self, name: str, lists: Sequence[Iterable[str]]) -> None:
        """Add a keyword-list column (e.g. clinical areas, CLIP keywords)."""
        col = _KeywordColumn(lists)
        self._check_new(name, len(col))
        self._columns[name] = (ColumnKind.KEYWORDS, col)

    def has_column(self, name: str) -> bool:
        """Whether a column named ``name`` exists."""
        return name in self._columns

    def column_kind(self, name: str) -> ColumnKind:
        """The :class:`ColumnKind` of column ``name``."""
        return self._columns[self._require(name)][0]

    def column(self, name: str):
        """The raw column payload (array or keyword column)."""
        return self._columns[self._require(name)][1]

    def _require(self, name: str) -> str:
        if name not in self._columns:
            raise KeyError(
                f"no column {name!r}; available: {sorted(self._columns)}"
            )
        return name

    def row(self, i: int) -> dict[str, object]:
        """The attribute tuple of entity ``i`` as a dict (for debugging)."""
        if not 0 <= i < self.num_rows:
            raise IndexError(f"row {i} out of range [0, {self.num_rows})")
        out: dict[str, object] = {}
        for name, (kind, payload) in self._columns.items():
            if kind is ColumnKind.KEYWORDS:
                out[name] = payload.row_keywords(i)
            else:
                out[name] = payload[i]
        return out
