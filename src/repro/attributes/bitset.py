"""Packed bitsets over entity ids.

Predicate evaluation in this library is *vectorized*: a predicate is
materialized once per query into a boolean mask over all entities, and
index search consults the mask per node.  ``Bitset`` packs such masks
8 entities per byte, supports the boolean algebra predicates need, and
converts to/from numpy boolean arrays at the edges.
"""

from __future__ import annotations

import numpy as np


class Bitset:
    """Fixed-size packed bitset with numpy-backed bulk operations."""

    __slots__ = ("size", "_bits")

    def __init__(self, size: int, bits: np.ndarray | None = None) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self.size = int(size)
        nbytes = (self.size + 7) // 8
        if bits is None:
            self._bits = np.zeros(nbytes, dtype=np.uint8)
        else:
            if bits.shape != (nbytes,):
                raise ValueError(f"bits must have shape ({nbytes},), got {bits.shape}")
            self._bits = bits.astype(np.uint8, copy=True)

    @classmethod
    def from_bool_array(cls, mask: np.ndarray) -> "Bitset":
        """Pack a boolean mask into a bitset."""
        mask = np.asarray(mask, dtype=bool)
        out = cls(mask.shape[0])
        out._bits = np.packbits(mask, bitorder="little")
        # packbits can emit zero bytes for empty input; normalize length.
        want = (out.size + 7) // 8
        if out._bits.shape[0] != want:
            out._bits = np.resize(out._bits, want)
        return out

    @classmethod
    def from_indices(cls, indices, size: int) -> "Bitset":
        """Bitset of ``size`` with the given positions set."""
        mask = np.zeros(size, dtype=bool)
        idx = np.asarray(list(indices), dtype=np.intp)
        if idx.size:
            if idx.min() < 0 or idx.max() >= size:
                raise IndexError("index out of bitset range")
            mask[idx] = True
        return cls.from_bool_array(mask)

    def to_bool_array(self) -> np.ndarray:
        """Unpack into a boolean mask of length ``size``."""
        return np.unpackbits(self._bits, count=self.size, bitorder="little").astype(bool)

    def get(self, i: int) -> bool:
        """Whether bit ``i`` is set."""
        if not 0 <= i < self.size:
            raise IndexError(f"bit {i} out of range [0, {self.size})")
        return bool((self._bits[i >> 3] >> (i & 7)) & 1)

    def set(self, i: int, value: bool = True) -> None:
        """Set or clear bit ``i``."""
        if not 0 <= i < self.size:
            raise IndexError(f"bit {i} out of range [0, {self.size})")
        if value:
            self._bits[i >> 3] |= np.uint8(1 << (i & 7))
        else:
            self._bits[i >> 3] &= np.uint8(~(1 << (i & 7)) & 0xFF)

    def count(self) -> int:
        """Number of set bits."""
        return int(np.unpackbits(self._bits, count=self.size, bitorder="little").sum())

    def indices(self) -> np.ndarray:
        """Ids of set bits, ascending."""
        return np.flatnonzero(self.to_bool_array())

    def _check_same_size(self, other: "Bitset") -> None:
        if self.size != other.size:
            raise ValueError(f"bitset sizes differ: {self.size} vs {other.size}")

    def __and__(self, other: "Bitset") -> "Bitset":
        self._check_same_size(other)
        return Bitset(self.size, self._bits & other._bits)

    def __or__(self, other: "Bitset") -> "Bitset":
        self._check_same_size(other)
        return Bitset(self.size, self._bits | other._bits)

    def __invert__(self) -> "Bitset":
        out = Bitset(self.size, ~self._bits)
        # Clear padding bits past `size` so count()/indices() stay exact.
        tail = self.size & 7
        if tail and out._bits.size:
            out._bits[-1] &= np.uint8((1 << tail) - 1)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self.size == other.size and np.array_equal(
            self.to_bool_array(), other.to_bool_array()
        )

    def __repr__(self) -> str:
        return f"Bitset(size={self.size}, set={self.count()})"
