"""Inverted index over a keyword column.

Weaviate-style systems (paper §8) build an inverted index over
structured data ahead of time and intersect posting lists at query time
to get the eligible-candidate bitmap.  We provide the same structure so
the pre-filter baseline resolves ``contains`` predicates without a scan,
mirroring the optimized filtering the paper's baselines use.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.attributes.bitset import Bitset
from repro.attributes.table import AttributeTable, ColumnKind


class InvertedIndex:
    """Keyword → sorted posting list of entity ids."""

    def __init__(self, table: AttributeTable, column: str) -> None:
        if table.column_kind(column) is not ColumnKind.KEYWORDS:
            raise ValueError(
                f"column {column!r} is {table.column_kind(column).value}, "
                "inverted index requires a keywords column"
            )
        self._column = table.column(column)
        self.num_rows = len(table)

    @property
    def vocabulary(self) -> list[str]:
        """All indexed keywords."""
        return list(self._column.vocab)

    def postings(self, keyword: str) -> np.ndarray:
        """Sorted entity ids whose list contains ``keyword``."""
        return np.sort(self._column.rows_containing(keyword))

    def matching_any(self, keywords: Iterable[str]) -> Bitset:
        """Bitset of entities containing at least one of ``keywords``."""
        return Bitset.from_bool_array(self._column.mask_containing_any(keywords))

    def matching_all(self, keywords: Iterable[str]) -> Bitset:
        """Bitset of entities containing every one of ``keywords``."""
        keywords = list(keywords)
        if not keywords:
            return Bitset.from_bool_array(np.ones(self.num_rows, dtype=bool))
        mask = np.ones(self.num_rows, dtype=bool)
        for kw in keywords:
            kw_mask = np.zeros(self.num_rows, dtype=bool)
            kw_mask[self._column.rows_containing(kw)] = True
            mask &= kw_mask
        return Bitset.from_bool_array(mask)

    def document_frequency(self, keyword: str) -> int:
        """Number of entities containing ``keyword``."""
        return int(self._column.rows_containing(keyword).shape[0])
