"""Structured-attribute storage.

Entities in a hybrid-search dataset carry an attribute tuple alongside
their vector (paper §3.1).  This subpackage provides the columnar
:class:`AttributeTable` those tuples live in, a packed :class:`Bitset`
used to evaluate ``contains`` predicates over low-cardinality keyword
domains (paper §7.2's pre-filtering implementation note), and an
:class:`InvertedIndex` mirroring the Weaviate-style structure discussed
in §8.
"""

from repro.attributes.bitset import Bitset
from repro.attributes.inverted import InvertedIndex
from repro.attributes.table import AttributeTable, ColumnKind

__all__ = ["AttributeTable", "Bitset", "ColumnKind", "InvertedIndex"]
