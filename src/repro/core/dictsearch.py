"""The pre-CSR dict-of-arrays search kernel, kept as a reference.

Before the CSR flattening (:mod:`repro.core.search`), frozen adjacency
was a ``dict[int, np.ndarray]`` per level and every strategy walked
neighbor entries in Python.  That kernel lives on here, verbatim, for
two jobs:

- **equivalence testing** — ``tests/core/test_csr_equivalence.py``
  asserts the CSR kernel returns byte-identical results (ids,
  distances, distance-computation counts, hop/visited counters) for
  every index type and strategy;
- **benchmarking** — ``python -m repro bench-traversal`` measures the
  CSR kernel against this dict path and records the before/after delta
  in ``BENCH_traversal.json``.

Nothing in the production search path imports this module.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

from repro.hnsw.graph import LayeredGraph
from repro.hnsw.traversal import TraversalStats
from repro.vectors.distance import DistanceComputer

FrozenLevelDict = dict[int, np.ndarray]


def freeze_graph_dict(graph: LayeredGraph) -> list[FrozenLevelDict]:
    """Snapshot each level's adjacency as read-only int64 arrays."""
    frozen: list[FrozenLevelDict] = []
    for level in range(graph.max_level + 1):
        level_adjacency: FrozenLevelDict = {}
        for node in graph.nodes_at_level(level):
            arr = np.asarray(graph.neighbors(node, level), dtype=np.int64)
            arr.setflags(write=False)
            level_adjacency[node] = arr
        frozen.append(level_adjacency)
    return frozen


def filtered_neighbors_dict(
    adjacency: FrozenLevelDict, node: int, mask: np.ndarray
) -> list[int]:
    """Filter strategy (Fig 4a) over the dict layout."""
    neighbor_ids = adjacency[node]
    if neighbor_ids.size == 0:
        return []
    return neighbor_ids[mask[neighbor_ids]].tolist()


def compressed_neighbors_dict(
    adjacency: FrozenLevelDict,
    node: int,
    mask: np.ndarray,
    m_beta: int,
) -> list[int]:
    """Compression strategy (Fig 4b) over the dict layout."""
    neighbor_ids = adjacency[node]
    if neighbor_ids.size == 0:
        return []
    head = neighbor_ids[:m_beta]
    out = head[mask[head]].tolist()
    seen = set(out)
    for hop in neighbor_ids[m_beta:].tolist():
        if mask[hop] and hop not in seen:
            seen.add(hop)
            out.append(hop)
        two_hop = adjacency[hop]
        if two_hop.size == 0:
            continue
        passing = two_hop[mask[two_hop]]
        for cand in passing.tolist():
            if cand not in seen:
                seen.add(cand)
                out.append(cand)
    return out


def expanded_neighbors_dict(
    adjacency: FrozenLevelDict, node: int, mask: np.ndarray
) -> list[int]:
    """ACORN-1's expansion strategy (Fig 4c) over the dict layout."""
    return compressed_neighbors_dict(adjacency, node, mask, m_beta=0)


def truncated_neighbors_dict(
    adjacency: FrozenLevelDict, node: int, m: int
) -> list[int]:
    """Construction lookup (§5.2) over the dict layout."""
    return adjacency[node][:m].tolist()


def search_layer_dict(
    computer: DistanceComputer,
    query: np.ndarray,
    entry_points: Sequence[tuple[float, int]],
    ef: int,
    neighbor_fn,
    visited: np.ndarray,
    stats: TraversalStats | None = None,
) -> list[tuple[float, int]]:
    """The pre-CSR best-first layer search: per-neighbor Python loops.

    ``visited`` is the old O(N)-per-level boolean scratch array;
    ``neighbor_fn`` returns any sequence of node ids.
    """
    if ef <= 0:
        raise ValueError(f"ef must be positive, got {ef}")
    candidates: list[tuple[float, int]] = list(entry_points)
    heapq.heapify(candidates)
    results = [(-dist, node) for dist, node in entry_points]
    heapq.heapify(results)

    while candidates:
        dist_c, current = heapq.heappop(candidates)
        if dist_c > -results[0][0] and len(results) >= ef:
            break
        if stats is not None:
            stats.hops += 1
        unvisited = [v for v in neighbor_fn(current) if not visited[v]]
        if not unvisited:
            continue
        if stats is not None:
            stats.visited += len(unvisited)
        for node in unvisited:
            visited[node] = True
        dists = computer.distances_to(query, np.asarray(unvisited, dtype=np.intp))
        worst = -results[0][0]
        for node, dist in zip(unvisited, dists.tolist()):
            if len(results) < ef or dist < worst:
                heapq.heappush(candidates, (dist, node))
                heapq.heappush(results, (-dist, node))
                if len(results) > ef:
                    heapq.heappop(results)
                worst = -results[0][0]

    ordered = sorted((-neg_dist, node) for neg_dist, node in results)
    return ordered[:ef]


def _neighbor_fn_dict(index, adjacency: FrozenLevelDict, level: int,
                      mask: np.ndarray):
    """The dict-kernel counterpart of ``AcornIndex._neighbor_fn``."""
    from repro.core.acorn import AcornOneIndex

    if isinstance(index, AcornOneIndex):
        return lambda c: expanded_neighbors_dict(adjacency, c, mask)
    if index._is_compressed(level):
        m_beta = index.params.m_beta
        return lambda c: compressed_neighbors_dict(adjacency, c, mask, m_beta)
    return lambda c: filtered_neighbors_dict(adjacency, c, mask)


def legacy_acorn_search(
    index,
    query: np.ndarray,
    predicate,
    k: int,
    ef_search: int = 64,
    entry_point: int | None = None,
    frozen: list[FrozenLevelDict] | None = None,
):
    """``AcornIndex.search`` exactly as implemented before the CSR kernel.

    Dict-of-arrays frozen adjacency, per-neighbor Python filtering, a
    fresh O(N) boolean visited array per level, and per-hop locked
    distance counting.  Returns the same :class:`SearchResult` shape as
    the production path; results must be byte identical.

    Args:
        frozen: optional prebuilt dict snapshot (reused across queries
            by the benchmark harness); built on the fly otherwise.
    """
    from repro.hnsw.hnsw import SearchResult

    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    compiled = index._compile(predicate)
    if len(index.graph) == 0:
        return SearchResult(
            np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float32), 0
        )
    if frozen is None:
        frozen = freeze_graph_dict(index.graph)
    computer = index.store.computer()
    query = computer.set_query(query)
    mask = compiled.mask
    if index._deleted:
        mask = mask.copy()
        mask[list(index._deleted)] = False

    tstats = TraversalStats()
    entry = index.graph.entry_point if entry_point is None else entry_point
    best = (computer.distance_one(query, entry), entry)
    tstats.visited += 1
    for lev in range(index.graph.node_level(entry), 0, -1):
        visited = np.zeros(len(index.store), dtype=bool)
        visited[best[1]] = True
        found = search_layer_dict(
            computer, query, [best], ef=1,
            neighbor_fn=_neighbor_fn_dict(index, frozen[lev], lev, mask),
            visited=visited, stats=tstats,
        )
        best = found[0]

    entry_points = index._bottom_seeds(computer, query, [best])
    visited = np.zeros(len(index.store), dtype=bool)
    for _, seed_node in entry_points:
        visited[seed_node] = True
    tstats.visited += len(entry_points)
    found = search_layer_dict(
        computer, query, entry_points, ef=max(ef_search, k),
        neighbor_fn=_neighbor_fn_dict(index, frozen[0], 0, mask),
        visited=visited, stats=tstats,
    )
    passing = [(dist, nid) for dist, nid in found if mask[nid]][:k]
    return SearchResult(
        np.asarray([nid for _, nid in passing], dtype=np.intp),
        np.asarray([dist for dist, _ in passing], dtype=np.float32),
        computer.count,
        hops=tstats.hops,
        visited_nodes=tstats.visited,
    )


def legacy_hnsw_search(index, query: np.ndarray, k: int, ef_search: int = 64):
    """``HnswIndex.search`` as implemented before the CSR kernel.

    Live adjacency lists, per-neighbor Python iteration, fresh boolean
    visited arrays per level.
    """
    from repro.hnsw.hnsw import SearchResult

    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if len(index.graph) == 0:
        empty = np.empty(0, dtype=np.intp)
        return SearchResult(empty, np.empty(0, dtype=np.float32), 0)
    computer = index.store.computer()
    query = computer.set_query(query)
    graph = index.graph
    entry = graph.entry_point
    best = (computer.distance_one(query, entry), entry)
    for lev in range(graph.node_level(entry), 0, -1):
        visited = np.zeros(len(index.store), dtype=bool)
        visited[best[1]] = True
        found = search_layer_dict(
            computer, query, [best], ef=1,
            neighbor_fn=lambda c, lev=lev: graph.neighbors(c, lev),
            visited=visited,
        )
        best = found[0]
    visited = np.zeros(len(index.store), dtype=bool)
    visited[best[1]] = True
    found = search_layer_dict(
        computer, query, [best], ef=max(ef_search, k),
        neighbor_fn=lambda c: graph.neighbors(c, 0),
        visited=visited,
    )
    top = found[:k]
    return SearchResult(
        np.asarray([nid for _, nid in top], dtype=np.intp),
        np.asarray([dist for dist, _ in top], dtype=np.float32),
        computer.count,
    )


class LegacySearcherAdapter:
    """Wraps an ACORN index so ``search`` runs the dict kernel.

    Lets the batch engine (and the traversal benchmark) fan the legacy
    path across workers through the exact same
    ``search(query, predicate, k, ef_search=...)`` interface.
    """

    def __init__(self, index) -> None:
        self.index = index
        self.table = index.table
        self._frozen_dict: list[FrozenLevelDict] | None = None

    def freeze(self) -> list[FrozenLevelDict]:
        """Build (and cache) the dict snapshot, mirroring ``freeze()``."""
        if self._frozen_dict is None:
            self._frozen_dict = freeze_graph_dict(self.index.graph)
        return self._frozen_dict

    def search(self, query, predicate, k, ef_search: int = 64):
        """Answer one query through the legacy dict-kernel path."""
        return legacy_acorn_search(
            self.index, query, predicate, k, ef_search=ef_search,
            frozen=self.freeze(),
        )
