"""ACORN-γ construction internals: candidate selection and pruning.

The two construction-time modifications the paper makes to HNSW (§5.2):

1. **Neighbor-list expansion** — each inserted node collects M·γ
   approximate nearest neighbors as candidate edges, found by a
   *metadata-agnostic* traversal that truncates every neighbor list to
   its first M entries (the graph is navigable with M edges by
   construction, so scanning all M·γ during insertion would only waste
   distance computations).

2. **Predicate-agnostic pruning** — level 0 keeps the nearest Mβ
   candidates verbatim, then two-hop-prunes the rest: a candidate is
   dropped iff it is already reachable through a kept candidate with
   list index ≥ Mβ, which is exactly the set of neighbors the
   compression-aware search lookup expands (Figure 4b), so every pruned
   edge is recoverable *regardless of the query predicate*.

The alternative pruning rules compared in Figure 12 (HNSW's
metadata-blind RNG heuristic and FilteredDiskANN's metadata-aware RNG
rule) live here too, selected by
:class:`~repro.core.params.PruningStrategy`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.hnsw.graph import LayeredGraph
from repro.vectors.distance import Metric, _KERNELS, resolve_metric


@dataclasses.dataclass
class PruningStats:
    """Counters describing pruning behaviour (Figure 12c's metric)."""

    nodes_pruned: int = 0
    candidates_seen: int = 0
    candidates_dropped: int = 0

    @property
    def dropped_per_node(self) -> float:
        """Average candidate edges pruned per processed node."""
        if self.nodes_pruned == 0:
            return 0.0
        return self.candidates_dropped / self.nodes_pruned

    def record(self, seen: int, kept: int) -> None:
        """Account one pruning invocation."""
        self.nodes_pruned += 1
        self.candidates_seen += seen
        self.candidates_dropped += seen - kept


def prune_predicate_agnostic(
    candidates: Sequence[tuple[float, int]],
    graph: LayeredGraph,
    level: int,
    m_beta: int,
    max_degree: int,
    stats: PruningStats | None = None,
) -> list[tuple[float, int]]:
    """ACORN's predicate-agnostic compression (paper §5.2, Figure 5b).

    Iterates the ascending-distance candidate list: the first ``m_beta``
    are kept unconditionally; each later candidate is dropped iff it
    already appears in ``H``, the union of neighbor lists of later kept
    candidates.  Stops early once ``|H| +`` kept exceeds ``max_degree``
    (M·γ).

    Args:
        candidates: (distance, id) pairs sorted ascending.
        graph: the under-construction graph (read for 2-hop sets).
        level: level whose adjacency supplies the 2-hop sets.
        m_beta: number of nearest candidates retained verbatim.
        max_degree: M·γ budget bounding |H| + kept.
        stats: optional counter sink.

    Returns:
        The kept (distance, id) pairs, ascending by distance.
    """
    kept = list(candidates[:m_beta])
    two_hop: set[int] = set()
    for dist, cand in candidates[m_beta:]:
        if len(two_hop) + len(kept) > max_degree:
            break
        if cand in two_hop:
            continue
        kept.append((dist, cand))
        two_hop.update(graph.neighbors(cand, level))
    if stats is not None:
        stats.record(seen=len(candidates), kept=len(kept))
    return kept


def prune_rng_blind(
    candidates: Sequence[tuple[float, int]],
    vectors: np.ndarray,
    max_keep: int,
    metric: "Metric | str" = Metric.L2,
    stats: PruningStats | None = None,
) -> list[tuple[float, int]]:
    """HNSW's metadata-blind RNG pruning, applied to ACORN's candidates.

    Included for Figure 12: the paper shows this rule severs predicate
    subgraphs (the relay node of a pruned triangle may fail the query
    predicate), significantly degrading hybrid-search recall.
    """
    kernel = _KERNELS[resolve_metric(metric)]
    kept: list[tuple[float, int]] = []
    kept_ids: list[int] = []
    for dist_c, cand in candidates:
        if len(kept) >= max_keep:
            break
        if kept_ids:
            dists = kernel(vectors[kept_ids], vectors[cand])
            if bool((dists < dist_c).any()):
                continue
        kept.append((dist_c, cand))
        kept_ids.append(cand)
    if stats is not None:
        stats.record(seen=len(candidates), kept=len(kept))
    return kept


def prune_rng_metadata(
    candidates: Sequence[tuple[float, int]],
    vectors: np.ndarray,
    labels: np.ndarray,
    owner: int,
    max_keep: int,
    metric: "Metric | str" = Metric.L2,
    stats: PruningStats | None = None,
) -> list[tuple[float, int]]:
    """FilteredDiskANN-style metadata-aware RNG pruning (Figure 12's (ii)).

    A candidate ``b`` may only be pruned via a kept relay ``a`` when
    ``a`` carries the same label as both the owner and ``b`` — ensuring
    the pruned triangle survives inside every equality-predicate
    subgraph.  Requires a single low-cardinality label per entity, which
    is exactly the restriction that makes the approach non-agnostic.
    """
    kernel = _KERNELS[resolve_metric(metric)]
    owner_label = labels[owner]
    kept: list[tuple[float, int]] = []
    kept_ids: list[int] = []
    for dist_c, cand in candidates:
        if len(kept) >= max_keep:
            break
        prune = False
        if kept_ids:
            cand_label = labels[cand]
            # A relay can only dominate when it shares the label of
            # both the owner and the candidate.
            if cand_label == owner_label:
                relay_ids = np.asarray(kept_ids, dtype=np.intp)
                label_safe = labels[relay_ids] == owner_label
                if label_safe.any():
                    safe_ids = relay_ids[label_safe]
                    dists = kernel(vectors[safe_ids], vectors[cand])
                    prune = bool((dists < dist_c).any())
        if prune:
            continue
        kept.append((dist_c, cand))
        kept_ids.append(cand)
    if stats is not None:
        stats.record(seen=len(candidates), kept=len(kept))
    return kept
