"""ACORN-γ construction internals: candidate selection and pruning.

The two construction-time modifications the paper makes to HNSW (§5.2):

1. **Neighbor-list expansion** — each inserted node collects M·γ
   approximate nearest neighbors as candidate edges, found by a
   *metadata-agnostic* traversal that truncates every neighbor list to
   its first M entries (the graph is navigable with M edges by
   construction, so scanning all M·γ during insertion would only waste
   distance computations).

2. **Predicate-agnostic pruning** — level 0 keeps the nearest Mβ
   candidates verbatim, then two-hop-prunes the rest: a candidate is
   dropped iff it is already reachable through a kept candidate with
   list index ≥ Mβ, which is exactly the set of neighbors the
   compression-aware search lookup expands (Figure 4b), so every pruned
   edge is recoverable *regardless of the query predicate*.

The alternative pruning rules compared in Figure 12 (HNSW's
metadata-blind RNG heuristic and FilteredDiskANN's metadata-aware RNG
rule) live here too, selected by
:class:`~repro.core.params.PruningStrategy`.
"""

from __future__ import annotations

import dataclasses
import threading
from collections.abc import Callable, Sequence

import numpy as np

from repro.hnsw.graph import LayeredGraph
from repro.vectors.distance import Metric, _KERNELS, resolve_metric


@dataclasses.dataclass
class PruningStats:
    """Counters describing pruning behaviour (Figure 12c's metric).

    Thread-safe: :meth:`record` and :meth:`merge` serialize through an
    internal lock, so the parallel bulk builder can account pruning
    invocations from several worker threads without losing counts (the
    Table 3 / Figure 12c numbers must stay exact under concurrency).
    Workers that want to avoid per-call locking can accumulate into a
    private ``PruningStats`` and :meth:`merge` it once at the end — the
    same accumulate-and-flush pattern the distance counters use.
    """

    nodes_pruned: int = 0
    candidates_seen: int = 0
    candidates_dropped: int = 0
    _lock: threading.Lock = dataclasses.field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def dropped_per_node(self) -> float:
        """Average candidate edges pruned per processed node."""
        if self.nodes_pruned == 0:
            return 0.0
        return self.candidates_dropped / self.nodes_pruned

    def record(self, seen: int, kept: int) -> None:
        """Account one pruning invocation (thread-safe)."""
        with self._lock:
            self.nodes_pruned += 1
            self.candidates_seen += seen
            self.candidates_dropped += seen - kept

    def merge(self, other: "PruningStats") -> None:
        """Fold another stats object's counters into this one.

        Used by per-thread accumulate-and-flush accounting: each worker
        records into a private instance, then merges once, paying one
        lock acquisition per worker instead of one per pruned node.
        """
        with other._lock:
            nodes = other.nodes_pruned
            seen = other.candidates_seen
            dropped = other.candidates_dropped
        with self._lock:
            self.nodes_pruned += nodes
            self.candidates_seen += seen
            self.candidates_dropped += dropped


def prune_predicate_agnostic(
    candidates: Sequence[tuple[float, int]],
    graph: LayeredGraph,
    level: int,
    m_beta: int,
    max_degree: int,
    stats: PruningStats | None = None,
) -> list[tuple[float, int]]:
    """ACORN's predicate-agnostic compression (paper §5.2, Figure 5b).

    Iterates the ascending-distance candidate list: the first ``m_beta``
    are kept unconditionally; each later candidate is dropped iff it
    already appears in ``H``, the union of neighbor lists of later kept
    candidates.  Stops early once ``|H| +`` kept exceeds ``max_degree``
    (M·γ).

    Args:
        candidates: (distance, id) pairs sorted ascending.
        graph: the under-construction graph (read for 2-hop sets).
        level: level whose adjacency supplies the 2-hop sets.
        m_beta: number of nearest candidates retained verbatim.
        max_degree: M·γ budget bounding |H| + kept.
        stats: optional counter sink.

    Returns:
        The kept (distance, id) pairs, ascending by distance.
    """
    kept = list(candidates[:m_beta])
    two_hop: set[int] = set()
    for dist, cand in candidates[m_beta:]:
        if len(two_hop) + len(kept) > max_degree:
            break
        if cand in two_hop:
            continue
        kept.append((dist, cand))
        two_hop.update(graph.neighbors(cand, level))
    if stats is not None:
        stats.record(seen=len(candidates), kept=len(kept))
    return kept


def prune_rng_blind(
    candidates: Sequence[tuple[float, int]],
    vectors: np.ndarray,
    max_keep: int,
    metric: "Metric | str" = Metric.L2,
    stats: PruningStats | None = None,
) -> list[tuple[float, int]]:
    """HNSW's metadata-blind RNG pruning, applied to ACORN's candidates.

    Included for Figure 12: the paper shows this rule severs predicate
    subgraphs (the relay node of a pruned triangle may fail the query
    predicate), significantly degrading hybrid-search recall.
    """
    kernel = _KERNELS[resolve_metric(metric)]
    kept: list[tuple[float, int]] = []
    kept_ids: list[int] = []
    for dist_c, cand in candidates:
        if len(kept) >= max_keep:
            break
        if kept_ids:
            dists = kernel(vectors[kept_ids], vectors[cand])
            if bool((dists < dist_c).any()):
                continue
        kept.append((dist_c, cand))
        kept_ids.append(cand)
    if stats is not None:
        stats.record(seen=len(candidates), kept=len(kept))
    return kept


def prune_rng_metadata(
    candidates: Sequence[tuple[float, int]],
    vectors: np.ndarray,
    labels: np.ndarray,
    owner: int,
    max_keep: int,
    metric: "Metric | str" = Metric.L2,
    stats: PruningStats | None = None,
) -> list[tuple[float, int]]:
    """FilteredDiskANN-style metadata-aware RNG pruning (Figure 12's (ii)).

    A candidate ``b`` may only be pruned via a kept relay ``a`` when
    ``a`` carries the same label as both the owner and ``b`` — ensuring
    the pruned triangle survives inside every equality-predicate
    subgraph.  Requires a single low-cardinality label per entity, which
    is exactly the restriction that makes the approach non-agnostic.
    """
    kernel = _KERNELS[resolve_metric(metric)]
    owner_label = labels[owner]
    kept: list[tuple[float, int]] = []
    kept_ids: list[int] = []
    for dist_c, cand in candidates:
        if len(kept) >= max_keep:
            break
        prune = False
        if kept_ids:
            cand_label = labels[cand]
            # A relay can only dominate when it shares the label of
            # both the owner and the candidate.
            if cand_label == owner_label:
                relay_ids = np.asarray(kept_ids, dtype=np.intp)
                label_safe = labels[relay_ids] == owner_label
                if label_safe.any():
                    safe_ids = relay_ids[label_safe]
                    dists = kernel(vectors[safe_ids], vectors[cand])
                    prune = bool((dists < dist_c).any())
        if prune:
            continue
        kept.append((dist_c, cand))
        kept_ids.append(cand)
    if stats is not None:
        stats.record(seen=len(candidates), kept=len(kept))
    return kept


# ----------------------------------------------------------------------
# Vectorized candidate-matrix variants (bulk construction)
# ----------------------------------------------------------------------
#
# The scalar rules above evaluate candidate-to-candidate distances one
# kernel call per (candidate, kept-set) pair — fine for a single insert,
# ruinous for the wave-parallel bulk builder where a wave prunes
# hundreds of candidate lists.  The ``*_matrix`` / ``*_arrays`` variants
# below make the same decisions from a precomputed candidate distance
# matrix (one kernel call per candidate instead of per comparison) or,
# for the distance-free ACORN rule, from a boolean membership buffer
# instead of a growing Python set.
#
# Equivalence contract: each variant keeps *exactly* the same edge set
# as its scalar reference whenever the underlying distance values agree
# bitwise.  ``candidate_distance_matrix`` row ``i`` is computed by the
# very same ``_KERNELS`` call shape the scalar rules use
# (``kernel(C, C[i])`` over the gathered candidate block), which is
# bitwise-identical for the L2 kernel (per-row einsum reductions) and
# exact for every metric on integer-valued vectors; the hypothesis
# suite in ``tests/property/test_pruning_props.py`` pins this.


def candidate_distance_matrix(
    vectors: np.ndarray,
    ids: np.ndarray,
    metric: "Metric | str" = Metric.L2,
) -> np.ndarray:
    """Pairwise candidate distances ``D[i, j] = dist(query=i, base=j)``.

    Row ``i`` holds the configured kernel evaluated with candidate ``i``
    as the query and every candidate as base — exactly the orientation
    the RNG pruning rules consume (``D[cand, kept]`` replaces
    ``kernel(vectors[kept_ids], vectors[cand])``).

    These are *construction-heuristic* distances: like the scalar rules,
    they bypass the counted :class:`~repro.vectors.distance.DistanceComputer`
    path so Table 3's search-cost accounting is unaffected.
    """
    kernel = _KERNELS[resolve_metric(metric)]
    ids = np.asarray(ids, dtype=np.intp)
    block = vectors[ids]
    if ids.size == 0:
        return np.zeros((0, 0), dtype=vectors.dtype)
    return np.stack([kernel(block, block[i]) for i in range(ids.size)])


def prune_predicate_agnostic_arrays(
    candidates: Sequence[tuple[float, int]],
    neighbor_fn: Callable[[int], Sequence[int]],
    num_ids: int,
    m_beta: int,
    max_degree: int,
    stats: PruningStats | None = None,
) -> list[tuple[float, int]]:
    """Array-buffer variant of :func:`prune_predicate_agnostic`.

    Replaces the growing ``two_hop`` Python set with a boolean
    membership buffer over the id space: the ``cand in two_hop`` probe
    becomes one array read and the neighbor-union becomes one scatter.
    Neighbor lists arrive through ``neighbor_fn`` (typically a frozen
    CSR slice), so the rule works against any adjacency snapshot, not
    just the live graph.

    Keeps exactly the same edges as the scalar reference: the rule
    involves no distances, only membership and the ``|H| + kept``
    budget, and the buffer tracks ``|H|`` as the count of distinct
    marked ids.
    """
    kept = list(candidates[:m_beta])
    in_h = np.zeros(num_ids, dtype=bool)
    h_count = 0
    for dist, cand in candidates[m_beta:]:
        if h_count + len(kept) > max_degree:
            break
        if in_h[cand]:
            continue
        kept.append((dist, cand))
        # A stored neighbor list never repeats an id (graph invariant,
        # enforced by ``LayeredGraph.validate``), so the unmarked subset
        # is already distinct — no dedup pass needed before counting.
        neighbor_ids = np.asarray(neighbor_fn(cand), dtype=np.intp)
        if neighbor_ids.size:
            fresh = neighbor_ids[~in_h[neighbor_ids]]
            in_h[fresh] = True
            h_count += int(fresh.size)
    if stats is not None:
        stats.record(seen=len(candidates), kept=len(kept))
    return kept


def prune_rng_blind_matrix(
    candidates: Sequence[tuple[float, int]],
    vectors: np.ndarray,
    max_keep: int,
    metric: "Metric | str" = Metric.L2,
    stats: PruningStats | None = None,
    dmatrix: np.ndarray | None = None,
) -> list[tuple[float, int]]:
    """Candidate-matrix variant of :func:`prune_rng_blind`.

    One ``candidate_distance_matrix`` evaluation replaces the per-pair
    kernel calls; the RNG triangle rule then reads ``D[cand, kept]``
    row gathers.  Pass ``dmatrix`` to share a precomputed matrix (rows
    must align with ``candidates`` order).
    """
    candidates = list(candidates)
    if dmatrix is None:
        ids = np.asarray([cand for _, cand in candidates], dtype=np.intp)
        dmatrix = candidate_distance_matrix(vectors, ids, metric)
    kept: list[tuple[float, int]] = []
    kept_pos: list[int] = []
    for pos, (dist_c, cand) in enumerate(candidates):
        if len(kept) >= max_keep:
            break
        if kept_pos and bool((dmatrix[pos, kept_pos] < dist_c).any()):
            continue
        kept.append((dist_c, cand))
        kept_pos.append(pos)
    if stats is not None:
        stats.record(seen=len(candidates), kept=len(kept))
    return kept


def prune_rng_metadata_matrix(
    candidates: Sequence[tuple[float, int]],
    vectors: np.ndarray,
    labels: np.ndarray,
    owner: int,
    max_keep: int,
    metric: "Metric | str" = Metric.L2,
    stats: PruningStats | None = None,
    dmatrix: np.ndarray | None = None,
) -> list[tuple[float, int]]:
    """Candidate-matrix variant of :func:`prune_rng_metadata`.

    Same label-safety condition as the scalar rule — a relay may only
    dominate when it shares the owner's and candidate's label — with
    the relay distances read from the precomputed candidate matrix.
    """
    candidates = list(candidates)
    if dmatrix is None:
        ids = np.asarray([cand for _, cand in candidates], dtype=np.intp)
        dmatrix = candidate_distance_matrix(vectors, ids, metric)
    owner_label = labels[owner]
    cand_ids = np.asarray([cand for _, cand in candidates], dtype=np.intp)
    cand_safe = (
        labels[cand_ids] == owner_label if cand_ids.size
        else np.zeros(0, dtype=bool)
    )
    kept: list[tuple[float, int]] = []
    kept_pos: list[int] = []
    for pos, (dist_c, cand) in enumerate(candidates):
        if len(kept) >= max_keep:
            break
        prune = False
        if kept_pos and cand_safe[pos]:
            relay_pos = np.asarray(kept_pos, dtype=np.intp)
            label_safe = cand_safe[relay_pos]
            if label_safe.any():
                safe_pos = relay_pos[label_safe]
                prune = bool((dmatrix[pos, safe_pos] < dist_c).any())
        if prune:
            continue
        kept.append((dist_c, cand))
        kept_pos.append(pos)
    if stats is not None:
        stats.record(seen=len(candidates), kept=len(kept))
    return kept
