"""ACORN: the paper's primary contribution.

Two indices implement predicate-subgraph traversal over a modified
HNSW (paper §5):

- :class:`AcornIndex` — ACORN-γ, which densifies the graph at
  construction time (M·γ candidate edges per node, predicate-agnostic
  Mβ compression on level 0) and filters neighbor lists by the query
  predicate at search time;
- :class:`AcornOneIndex` — ACORN-1, which builds a plain (unpruned)
  HNSW and instead expands one-hop+two-hop neighborhoods during search.

:class:`HybridSearcher` wraps either index with the paper's cost-based
router (§5.2): queries whose estimated selectivity falls below
``s_min = 1/γ`` fall back to pre-filtering.
"""

from repro.core.acorn import AcornIndex, AcornOneIndex
from repro.core.flat import FlatAcornIndex
from repro.core.params import AcornParams
from repro.core.router import HybridSearcher, QueryPlan, RoutingDecision
from repro.core.search import FrozenLevel, freeze_graph

__all__ = [
    "AcornIndex",
    "AcornOneIndex",
    "AcornParams",
    "FlatAcornIndex",
    "FrozenLevel",
    "HybridSearcher",
    "QueryPlan",
    "RoutingDecision",
    "freeze_graph",
]
