"""ACORN's framework applied to a flat (single-level) proximity graph.

§5 notes the predicate-subgraph framework "can be applied to a variety
of graph-based ANN indices" even though the paper instantiates it on
HNSW.  :class:`FlatAcornIndex` is that generality made concrete: the
same M·γ neighbor expansion, the same predicate-agnostic Mβ
compression, and the same filter/2-hop search lookups — on a
single-level graph of the NSG/Vamana family (no hierarchy, fixed
medoid-ish entry point).

Useful both as a demonstration and practically: flat graphs are simpler
to shard and serialize, and on small corpora the hierarchy buys little
(log n is tiny), so this variant trades worst-case routing for a leaner
structure.
"""

from __future__ import annotations

import numpy as np

from repro.attributes.table import AttributeTable
from repro.core.acorn import AcornIndex
from repro.core.params import AcornParams
from repro.vectors.distance import Metric


class _GroundLevel:
    """Level assignment that pins every node to level 0."""

    def draw(self) -> int:
        return 0


class FlatAcornIndex(AcornIndex):
    """Single-level ACORN index (NSG/Vamana-style substrate).

    Construction and search reuse :class:`AcornIndex` wholesale — the
    only changes are the degenerate level assignment and a medoid entry
    point chosen after the build (a flat graph has no upper levels to
    route from, so a central entry matters more).
    """

    def __init__(
        self,
        dim: int,
        table: AttributeTable,
        params: AcornParams | None = None,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
        labels: np.ndarray | None = None,
    ) -> None:
        super().__init__(dim, table, params=params, metric=metric, seed=seed,
                         labels=labels)
        self._levels = _GroundLevel()

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        table: AttributeTable,
        params: AcornParams | None = None,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
        labels: np.ndarray | None = None,
        n_workers: int = 1,
        wave_cap: int | None = None,
    ) -> "FlatAcornIndex":
        """Construct a flat index and anchor its entry at the medoid.

        ``n_workers``/``wave_cap`` are accepted for signature parity
        with the layered variants but ignored: the flat substrate's
        :meth:`_bottom_seeds` draws pseudo-random extra seeds from the
        *live* graph size at every insert, which the wave pipeline's
        frozen snapshots cannot replay, so construction stays
        sequential.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(table) < vectors.shape[0]:
            # A larger table is allowed: extra rows serve later inserts.
            raise ValueError(
                f"table has {len(table)} rows but got {vectors.shape[0]} vectors"
            )
        index = cls(vectors.shape[1], table, params=params, metric=metric,
                    seed=seed, labels=labels)
        for vector in vectors:
            index.add(vector)
        index.reanchor_entry_point()
        return index

    def _bottom_seeds(self, computer, query, seeds):
        """Entry seeds plus deterministic pseudo-random extras.

        A flat graph has no upper levels to route long range, so —
        exactly as the KGraph/NSW family does — traversal starts from
        several spread-out seeds in addition to the entry point, during
        both search and construction (single-seed construction lets the
        graph fragment into per-cluster islands).  Seeds come from a
        fixed hash sequence, keeping everything deterministic.
        """
        n = len(self.graph)
        if n <= 1:
            return seeds
        have = {node for _, node in seeds}
        extra = np.unique((np.arange(min(n, 16)) * 2654435761 + 97) % n)
        extra = np.asarray([v for v in extra.tolist() if v not in have],
                           dtype=np.intp)
        if extra.size == 0:
            return seeds
        dists = computer.distances_to(query, extra)
        return sorted(list(seeds) + list(zip(dists.tolist(), extra.tolist())))

    def reanchor_entry_point(self) -> None:
        """Move the entry point to the (approximate) dataset medoid.

        Call after bulk construction; incremental adds afterwards keep
        the anchor (a flat graph never promotes entries the way the
        hierarchical index does).
        """
        if len(self.store) == 0:
            return
        vectors = self.store.vectors
        centroid = vectors.mean(axis=0)
        diffs = vectors - centroid
        self.graph.entry_point = int(
            np.argmin(np.einsum("ij,ij->i", diffs, diffs))
        )
