"""Workload-driven parameter suggestion (paper §5.2's γ rule).

The paper prescribes γ = 1/s_min, "where s_min is the minimum predicate
selectivity we plan to serve before resorting to pre-filtering", and
notes selectivities "can be estimated empirically with or without
knowing the predicate set".  This module turns that prescription into
an API: give it a sample of representative predicates (or raw
selectivity values) and it returns an :class:`AcornParams` tuned to the
workload.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.attributes.table import AttributeTable
from repro.core.params import AcornParams
from repro.predicates.base import Predicate
from repro.predicates.selectivity import SamplingSelectivityEstimator


def suggest_params(
    selectivities: Sequence[float],
    m: int = 32,
    target_percentile: float = 5.0,
    gamma_cap: int = 64,
    ef_construction: int = 40,
) -> AcornParams:
    """Choose ACORN parameters from observed workload selectivities.

    Args:
        selectivities: selectivity samples from the expected workload.
        m: degree bound M.
        target_percentile: s_min is set to this percentile of the
            sample, so roughly that fraction of queries fall back to
            pre-filtering (their cheapest regime anyway — Figure 9).
        gamma_cap: upper bound on γ, limiting construction cost; the
            router's fall-back keeps correctness when the cap binds.
        ef_construction: efc passed through.

    Returns:
        An :class:`AcornParams` with γ = min(ceil(1/s_min), gamma_cap)
        and Mβ = 2M (the paper's default band).
    """
    values = np.asarray(list(selectivities), dtype=np.float64)
    if values.size == 0:
        raise ValueError("need at least one selectivity sample")
    if ((values < 0) | (values > 1)).any():
        raise ValueError("selectivities must lie in [0, 1]")
    s_min = float(np.percentile(values, target_percentile))
    s_min = max(s_min, 1.0 / gamma_cap)
    params = AcornParams.from_s_min(
        s_min, m=m, m_beta=2 * m, ef_construction=ef_construction
    )
    if params.gamma > gamma_cap:
        params = AcornParams(
            m=m, gamma=gamma_cap, m_beta=2 * m,
            ef_construction=ef_construction,
        )
    return params


def suggest_params_from_predicates(
    table: AttributeTable,
    predicates: Iterable[Predicate],
    m: int = 32,
    target_percentile: float = 5.0,
    gamma_cap: int = 64,
    ef_construction: int = 40,
    sample_size: int = 1000,
    seed: int | np.random.Generator | None = 0,
) -> AcornParams:
    """Like :func:`suggest_params`, estimating selectivities by sampling.

    Evaluates each sample predicate on a fixed random subset of
    ``table`` (the way a system without precomputed masks would), then
    applies the γ rule.
    """
    estimator = SamplingSelectivityEstimator(
        table, sample_size=sample_size, seed=seed
    )
    values = [estimator.estimate(p) for p in predicates]
    return suggest_params(
        values, m=m, target_percentile=target_percentile,
        gamma_cap=gamma_cap, ef_construction=ef_construction,
    )
