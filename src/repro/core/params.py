"""ACORN construction parameters and validation (paper Table 1, §5.2)."""

from __future__ import annotations

import dataclasses
import enum
import math


class PruningStrategy(enum.Enum):
    """Level-0 pruning strategies compared in the paper's Figure 12."""

    ACORN = "acorn"               # predicate-agnostic 2-hop pruning (§5.2)
    RNG_BLIND = "rng-blind"       # HNSW's metadata-blind RNG heuristic
    RNG_METADATA = "rng-metadata"  # FilteredDiskANN-style label-aware RNG
    NONE = "none"                 # keep all M·γ candidates


@dataclasses.dataclass(frozen=True)
class AcornParams:
    """Construction parameters for an ACORN index.

    Attributes:
        m: HNSW degree bound M; search truncates every recovered
            neighborhood to M, and the level constant is m_L = 1/ln(M).
        gamma: neighbor expansion factor γ; each node collects M·γ
            candidate edges during construction.  γ = 1/s_min, the
            inverse of the minimum selectivity served before falling
            back to pre-filtering.
        m_beta: compression parameter Mβ ∈ [0, M·γ]; the number of
            nearest candidates retained verbatim on level 0 before
            2-hop pruning applies (§5.2).
        ef_construction: efc, candidate-list size during insertion.  The
            effective construction ef is max(efc, M·γ) because ACORN
            needs at least M·γ candidates per node.
        pruning: which level-0 pruning rule to apply (Figure 12 ablation).
        truncate_construction: whether construction-time traversal reads
            only the first M entries of each neighbor list (the paper's
            metadata-agnostic lookup, §5.2).  Disabling it scans full
            M·γ lists during insertion — slower, marginally better
            candidates; exposed for the construction ablation bench.
        compressed_levels: ``nc``, the number of levels (bottom-up) the
            pruning rule compresses.  The paper targets level 0 only
            (nc = 1) since it dominates the footprint, but §6.1 notes
            compression "could be applied to more levels in bottom-up
            order to further reduce the index size"; this implements
            that generalization.  Ignored when ``pruning`` is NONE.
        flatten_levels: reproduce Qdrant's flattened-graph variant
            (paper §8): draw levels with m_L = 1/ln(M·γ) instead of
            1/ln(M), collapsing the hierarchy the way directly raising
            HNSW's M would.  ACORN deliberately keeps m_L tied to M;
            this switch exists for the ablation showing why.
    """

    m: int = 32
    gamma: int = 12
    m_beta: int | None = None
    ef_construction: int = 40
    pruning: PruningStrategy = PruningStrategy.ACORN
    truncate_construction: bool = True
    compressed_levels: int = 1
    flatten_levels: bool = False

    def __post_init__(self) -> None:
        if self.m < 2:
            raise ValueError(f"M must be at least 2, got {self.m}")
        if self.gamma < 1:
            raise ValueError(f"gamma must be at least 1, got {self.gamma}")
        if self.ef_construction < 1:
            raise ValueError(f"efc must be positive, got {self.ef_construction}")
        if self.m_beta is None:
            object.__setattr__(self, "m_beta", self.m)
        if not 0 <= self.m_beta <= self.m * self.gamma:
            raise ValueError(
                f"M_beta must lie in [0, M*gamma] = [0, {self.m * self.gamma}], "
                f"got {self.m_beta}"
            )
        if not isinstance(self.pruning, PruningStrategy):
            object.__setattr__(self, "pruning", PruningStrategy(self.pruning))
        if self.compressed_levels < 0:
            raise ValueError(
                f"compressed_levels must be non-negative, got "
                f"{self.compressed_levels}"
            )

    @property
    def max_degree(self) -> int:
        """M·γ, the candidate-edge budget per node."""
        return self.m * self.gamma

    @property
    def s_min(self) -> float:
        """Minimum predicate selectivity served by graph search: 1/γ."""
        return 1.0 / self.gamma

    @property
    def m_l(self) -> float:
        """Level normalization constant: 1/ln(M), or 1/ln(M·γ) when the
        Qdrant-style flattening ablation is enabled."""
        base = self.max_degree if self.flatten_levels else self.m
        return 1.0 / math.log(max(base, 2))

    @property
    def effective_ef_construction(self) -> int:
        """max(efc, M·γ) — enough candidates for the expanded lists."""
        return max(self.ef_construction, self.max_degree)

    @classmethod
    def from_s_min(
        cls,
        s_min: float,
        m: int = 32,
        m_beta: int | None = None,
        ef_construction: int = 40,
    ) -> "AcornParams":
        """Choose γ = ceil(1/s_min) from a target minimum selectivity.

        This is the paper's recommended parameterization: pick the
        lowest selectivity the graph should serve before the router
        pre-filters, and size γ accordingly.
        """
        if not 0.0 < s_min <= 1.0:
            raise ValueError(f"s_min must lie in (0, 1], got {s_min}")
        return cls(
            m=m,
            gamma=max(1, math.ceil(1.0 / s_min)),
            m_beta=m_beta,
            ef_construction=ef_construction,
        )

    @classmethod
    def acorn_1(cls, m: int = 32, ef_construction: int = 40) -> "AcornParams":
        """ACORN-1's fixed construction: γ = 1, Mβ = M, no pruning (§5.3)."""
        return cls(
            m=m,
            gamma=1,
            m_beta=m,
            ef_construction=ef_construction,
            pruning=PruningStrategy.NONE,
        )
