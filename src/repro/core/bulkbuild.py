"""Wave-parallel, GEMM-batched bulk index construction (Table 4 TTI).

The sequential insert paths (``HnswIndex.add``, ``AcornIndex.add``)
compute one query-to-neighborhood distance batch per graph hop and one
pruning-kernel call per candidate pair.  This module rebuilds the same
construction as a *wave pipeline*:

1.  All node levels are pre-drawn from the index's seeded
    :class:`~repro.hnsw.levels.LevelGenerator` — the draw order matches
    the sequential path exactly (``VectorStore.add`` consumes no RNG),
    so the level structure of the graph is identical by construction.
2.  Pending nodes are inserted in **waves** whose sizes ramp
    1, 2, 4, … up to a cap (:func:`wave_schedule`); every node in a
    wave searches a single frozen pre-wave CSR snapshot
    (:func:`~repro.core.search.freeze_graph`), so wave members never
    observe each other's in-flight edits.
3.  Within a wave, Phase A runs every insertion's traversal as a
    **lockstep state machine** (:class:`_LockstepTask`): per round,
    each alive task exposes the neighborhood it needs distances for,
    the group concatenates all requests into one matrix distance call
    (:func:`_batched_distances`) and scatters results back.  Tasks are
    sharded into contiguous groups across a ``ThreadPoolExecutor``
    (numpy kernels release the GIL).
4.  Phase B1 (serial, ascending node id) registers the wave's nodes
    and selects forward edges with the vectorized candidate-matrix
    pruning variants (``repro.core.construction`` ``*_arrays`` /
    ``*_matrix``, ``select_neighbors_heuristic_matrix``).
5.  Phase B2 applies reverse edges grouped by owner — owners are
    disjoint across workers, guarded by a :class:`LockStripe`
    (FAISS-style per-node locking) — replaying the exact sequential
    per-edge insert/shrink logic.  Re-pruning reads a
    :class:`_WaveView` (frozen snapshot overlaid with the wave's
    immutable B1 forward lists), never the concurrently-mutated live
    graph, which keeps multi-worker builds run-to-run deterministic.
6.  Entry-point promotion replays the sequential
    ``if level > top: entry = node`` rule in node-id order.

Determinism contract (see docs/performance.md):

- ``n_workers=1`` on the public ``build`` entry points dispatches to
  the untouched sequential insert loop — byte-identical to the legacy
  path, which stays in-tree as the reference (mirroring how
  ``repro.core.dictsearch`` anchors the CSR search kernel).
- The wave pipeline with ``wave_cap=1`` degenerates to single-node
  waves whose frozen snapshot equals the sequential pre-insert state;
  for the L2 metric (whose batched kernel is bitwise-identical to the
  scalar one) it reproduces the legacy graph exactly — pinned by
  tests/core/test_bulkbuild.py.
- ``n_workers>1`` with a fixed seed is run-to-run deterministic: wave
  membership, per-group task order, B1 order, and per-owner B2 replay
  order are all functions of (seed, n, wave_cap) only, never of thread
  scheduling.
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.search import freeze_graph
from repro.hnsw.heuristics import select_neighbors_heuristic_matrix
from repro.vectors.distance import Metric

_SEED, _SEARCH, _DONE = 0, 1, 2


def default_wave_cap(n: int) -> int:
    """Default maximum wave size for an ``n``-vector build."""
    return max(64, n // 32)


def wave_schedule(n_pending: int, cap: int) -> list[int]:
    """Deterministic wave sizes: 1, 2, 4, … doubling up to ``cap``.

    The ramp keeps early waves tiny — a large wave over a near-empty
    frozen graph would link every member to the same handful of nodes —
    and sums exactly to ``n_pending``.
    """
    if cap < 1:
        raise ValueError(f"wave cap must be positive, got {cap}")
    if n_pending < 0:
        raise ValueError(f"n_pending must be non-negative, got {n_pending}")
    sizes: list[int] = []
    size = 1
    remaining = n_pending
    while remaining > 0:
        take = min(size, cap, remaining)
        sizes.append(take)
        remaining -= take
        if size < cap:
            size *= 2
    return sizes


def graph_checksum(graph) -> str:
    """Order-independent-input, content-exact digest of a layered graph.

    Hashes the entry point, every node's level, and every per-level
    adjacency list (in node-id order, preserving stored neighbor
    order).  Two graphs compare equal under this checksum iff they have
    identical adjacency — the equality the determinism tests and the
    ``bench-build`` rebuild gate assert.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(str(graph.entry_point).encode())
    for node in range(len(graph)):
        h.update(b"|%d" % graph.node_level(node))
    for lev in range(graph.max_level + 1):
        h.update(b"/L%d" % lev)
        for node in sorted(graph.nodes_at_level(lev)):
            row = np.asarray(
                [node, -1] + list(graph.neighbors(node, lev)), dtype=np.int64
            )
            h.update(row.tobytes())
    return h.hexdigest()


class LockStripe:
    """A fixed pool of locks addressed by key hash (FAISS-style).

    Guards per-node neighbor-list mutation in Phase B2.  Owner shards
    are already disjoint across workers, so the stripe is a safety
    fence (and documentation of the locking discipline) rather than a
    correctness-critical serialization point; two owners mapping to one
    stripe merely serialize.
    """

    __slots__ = ("_locks",)

    def __init__(self, n_stripes: int = 64) -> None:
        self._locks = [threading.Lock() for _ in range(n_stripes)]

    def lock(self, key: int) -> threading.Lock:
        """The lock guarding ``key``."""
        return self._locks[key % len(self._locks)]


class _FrozenView:
    """Read-only adjacency over the pre-wave CSR snapshot.

    Duck-typed like :class:`~repro.hnsw.graph.LayeredGraph` for the
    pruning rules' ``neighbors(node, level)`` reads.
    """

    __slots__ = ("_frozen",)

    def __init__(self, frozen) -> None:
        self._frozen = frozen

    def neighbors(self, node: int, level: int) -> np.ndarray:
        if level >= len(self._frozen):
            return np.empty(0, dtype=np.int32)
        return self._frozen[level][node]


class _WaveView:
    """Frozen snapshot overlaid with the wave's immutable forward lists.

    Phase B2 re-pruning walks 2-hop sets of an owner's candidates;
    those candidates may be freshly inserted wave nodes (whose lists
    the frozen snapshot lacks) or pre-wave nodes (whose *live* lists
    other B2 workers are concurrently mutating).  Reading wave lists
    from the B1-final copies and everything else from the frozen
    snapshot makes every worker's reads deterministic.
    """

    __slots__ = ("_frozen", "_forward")

    def __init__(self, frozen, forward: dict[tuple[int, int], list[int]]) -> None:
        self._frozen = frozen
        self._forward = forward

    def neighbors(self, node: int, level: int):
        wave_list = self._forward.get((node, level))
        if wave_list is not None:
            return wave_list
        if level >= len(self._frozen):
            return np.empty(0, dtype=np.int32)
        return self._frozen[level][node]


def _batched_distances(
    base: np.ndarray,
    queries: np.ndarray,
    qidx: np.ndarray,
    ids: np.ndarray,
    metric: Metric,
    base_norms: np.ndarray | None = None,
    query_norms: np.ndarray | None = None,
) -> np.ndarray:
    """Distances for many (query, id) pairs in one matrix pass.

    ``qidx`` aligns a query row with every id: pair ``k`` is
    ``dist(queries[qidx[k]], base[ids[k]])``.  The L2 path (gather,
    subtract, row-wise einsum) is bitwise-identical to the scalar
    kernel ``_l2_sq(base[ids], q)`` evaluated per query, which is what
    lets ``wave_cap=1`` builds reproduce the legacy graph exactly.  The
    IP/cosine paths use a row-wise einsum whose results can differ from
    the BLAS matvec kernels by float ulps (documented; recall-level
    equivalence is pinned instead).
    """
    rows = base[ids]
    qs = queries[qidx]
    if metric is Metric.L2:
        diff = rows - qs
        return np.einsum("ij,ij->i", diff, diff)
    num = np.einsum("ij,ij->i", rows, qs)
    if metric is Metric.INNER_PRODUCT:
        return -num
    bn = base_norms[ids] if base_norms is not None else np.linalg.norm(rows, axis=1)
    qn = (query_norms[qidx] if query_norms is not None
          else np.linalg.norm(qs, axis=1))
    denom = np.maximum(bn * qn, np.finfo(np.float32).tiny)
    return 1.0 - num / denom


class _WaveScratch:
    """Per-group visited matrix: one epoch-stamped row per task slot."""

    __slots__ = ("_visited", "_epochs", "_dedup")

    def __init__(self, slots: int, num_ids: int) -> None:
        self._visited = np.zeros((slots, num_ids), dtype=np.uint32)
        self._epochs = np.zeros(slots, dtype=np.uint32)
        self._dedup = np.zeros(num_ids, dtype=np.intp)

    def begin(self, slot: int) -> None:
        """Open a fresh visited scope for ``slot`` (one per level)."""
        self._epochs[slot] += 1

    def unvisited(self, slot: int, ids: np.ndarray) -> np.ndarray:
        row = self._visited[slot]
        return ids[row[ids] != self._epochs[slot]]

    def mark(self, slot: int, ids) -> None:
        self._visited[slot][ids] = self._epochs[slot]

    def claim(self, slot: int, ids: np.ndarray) -> np.ndarray:
        """Filter ``ids`` to the unvisited ones and mark them, one pass.

        Fused :meth:`unvisited` + :meth:`mark` for the beam round loop,
        where the pair accounts for two fancy-index gathers per round.
        """
        row = self._visited[slot]
        epoch = self._epochs[slot]
        fresh = ids[row[ids] != epoch]
        row[fresh] = epoch
        return fresh

    def dedup_last(self, ids: np.ndarray) -> np.ndarray:
        """Drop duplicate ids, keeping each id's last occurrence.

        Scatter-then-gather positional trick: no sort, O(len(ids)), and
        the scratch row needs no clearing between calls (stale entries
        can never alias a position of the current call).  Deterministic
        — callers in the lockstep round loop run single-threaded per
        group, so the shared row is never contended.
        """
        tmp = self._dedup
        positions = np.arange(ids.size)
        tmp[ids] = positions
        return ids[tmp[ids] == positions]


class _LockstepTask:
    """One insertion's traversal, advanced round-by-round.

    Mirrors the sequential path exactly: a greedy ef=1 descent from the
    pre-wave entry point down to ``level+1``, then efc-wide collection
    searches from ``min(level, top)`` down to 0, each level replaying
    :func:`~repro.hnsw.traversal.search_layer`'s heap discipline
    verbatim.  ``advance`` pops candidates until it has a non-empty
    unvisited neighborhood (returned for batching) or the task
    finishes; ``consume`` replays the accept loop on the scattered-back
    distances.  Entry to ``consume`` with the result heap full lets a
    ``dists < worst`` prefilter drop rejects wholesale — sound because
    ``worst`` only decreases, so a pair rejected at entry stays
    rejected.
    """

    __slots__ = (
        "node", "level", "qrow", "found",
        "_adapter", "_entry", "_query", "_neighbor_fn", "_plan", "_plan_pos",
        "_slot", "_scratch", "_computer",
        "stage", "_pending", "_candidates", "_results", "_ef", "_lev", "_best",
    )

    def __init__(
        self, adapter, node: int, level: int, entry: int, top: int,
        query: np.ndarray, qrow: int, neighbor_fn,
    ) -> None:
        self.node = node
        self.level = level
        self.qrow = qrow
        self.found: dict[int, list[tuple[float, int]]] = {}
        self._adapter = adapter
        self._entry = entry
        self._query = query
        self._neighbor_fn = neighbor_fn
        ef = adapter.ef
        plan = [(lev, 1) for lev in range(top, level, -1)]
        plan += [(lev, ef) for lev in range(min(level, top), -1, -1)]
        self._plan = plan
        self._plan_pos = 0
        self.stage = _SEED
        self._pending: np.ndarray | None = None
        self._candidates: list[tuple[float, int]] = []
        self._results: list[tuple[float, int]] = []
        self._ef = 1
        self._lev = -1
        self._best: tuple[float, int] | None = None

    def bind(self, slot: int, scratch: _WaveScratch, computer) -> None:
        """Attach group-local resources before the round loop starts."""
        self._slot = slot
        self._scratch = scratch
        self._computer = computer

    def advance(self) -> np.ndarray | None:
        """Ids this task needs distances for next, or None when done."""
        if self.stage == _SEED:
            self._pending = np.asarray([self._entry], dtype=np.intp)
            return self._pending
        while self.stage != _DONE:
            while self._candidates:
                dist_c, current = heapq.heappop(self._candidates)
                if dist_c > -self._results[0][0] and len(self._results) >= self._ef:
                    self._candidates.clear()
                    break
                neighbor_ids = self._neighbor_fn(current, self._lev)
                if len(neighbor_ids) == 0:
                    continue
                unvisited = self._scratch.unvisited(self._slot, neighbor_ids)
                if unvisited.size == 0:
                    continue
                self._scratch.mark(self._slot, unvisited)
                self._pending = unvisited
                return unvisited
            self._finish_level()
        return None

    def consume(self, dists: np.ndarray) -> None:
        """Scatter one round's distances back into the heap state."""
        if self.stage == _SEED:
            self._best = (float(dists[0]), self._entry)
            self.stage = _SEARCH
            self._begin_level([self._best])
            return
        unvisited = self._pending
        self._pending = None
        worst = -self._results[0][0]
        if len(self._results) >= self._ef:
            keep = dists < worst
            unvisited = unvisited[keep]
            dists = dists[keep]
        for node, dist in zip(unvisited.tolist(), dists.tolist()):
            if len(self._results) < self._ef or dist < worst:
                heapq.heappush(self._candidates, (dist, node))
                heapq.heappush(self._results, (-dist, node))
                if len(self._results) > self._ef:
                    heapq.heappop(self._results)
                worst = -self._results[0][0]

    def _begin_level(self, seeds: list[tuple[float, int]]) -> None:
        lev, ef = self._plan[self._plan_pos]
        if ef > 1 and lev == 0:
            seeds = self._adapter.bottom_seeds(self._computer, self._query, seeds)
        self._lev = lev
        self._ef = ef
        self._scratch.begin(self._slot)
        for _, seed_node in seeds:
            self._scratch.mark(self._slot, seed_node)
        self._candidates = list(seeds)
        heapq.heapify(self._candidates)
        self._results = [(-dist, node) for dist, node in seeds]
        heapq.heapify(self._results)

    def _finish_level(self) -> None:
        ordered = sorted(
            (-neg_dist, node) for neg_dist, node in self._results
        )[: self._ef]
        if self._ef == 1:
            self._best = ordered[0]
            seeds = [self._best]
        else:
            self.found[self._lev] = ordered
            seeds = ordered
        self._plan_pos += 1
        if self._plan_pos >= len(self._plan):
            self.stage = _DONE
            return
        self._begin_level(seeds)


class _BeamTask:
    """Beam-batched variant of :class:`_LockstepTask` for multi-node waves.

    Instead of replaying ``search_layer``'s one-pop-per-round heap
    discipline, each round expands the ``beam`` best not-yet-expanded
    entries of the result set at once (GGNN-style batched best-first
    search) and merges the scattered-back distances with one
    ``lexsort`` — a handful of numpy calls per round instead of Python
    heap maintenance per candidate.  A level terminates when every kept
    result is expanded.

    The traversal is *not* pop-for-pop identical to the sequential
    path (it may expand tail results the heap search would have
    skipped, and it breaks distance ties by node id), but it is fully
    deterministic — every step is a pure function of the frozen
    snapshot — and its candidate sets are recall-equivalent, which is
    the parallel pipeline's contract.  Solo waves use
    :class:`_LockstepTask` so ``wave_cap=1`` builds stay edge-identical
    to the legacy path.
    """

    __slots__ = (
        "node", "level", "qrow", "found",
        "_adapter", "_entry", "_query", "_frozen", "_trunc", "_plan",
        "_plan_pos", "_slot", "_scratch", "_computer", "_beam", "_pending",
        "stage", "_res_ids", "_res_dists", "_res_expanded", "_ef", "_lev",
        "_indptr", "_indices",
    )

    def __init__(
        self, adapter, node: int, level: int, entry: int, top: int,
        query: np.ndarray, qrow: int, frozen, trunc: int | None,
        beam: int = 32,
    ) -> None:
        self.node = node
        self.level = level
        self.qrow = qrow
        self.found: dict[int, list[tuple[float, int]]] = {}
        self._adapter = adapter
        self._entry = entry
        self._query = query
        self._frozen = frozen
        self._trunc = trunc
        self._beam = max(1, beam)
        ef = adapter.ef
        plan = [(lev, 1) for lev in range(top, level, -1)]
        plan += [(lev, ef) for lev in range(min(level, top), -1, -1)]
        self._plan = plan
        self._plan_pos = 0
        self.stage = _SEED
        self._pending: np.ndarray | None = None
        self._res_ids = np.empty(0, dtype=np.intp)
        self._res_dists = np.empty(0, dtype=np.float64)
        self._res_expanded = np.empty(0, dtype=bool)
        self._ef = 1
        self._lev = -1
        self._indptr: np.ndarray | None = None
        self._indices: np.ndarray | None = None

    def bind(self, slot: int, scratch: _WaveScratch, computer) -> None:
        self._slot = slot
        self._scratch = scratch
        self._computer = computer

    def advance(self) -> np.ndarray | None:
        if self.stage == _SEED:
            return np.asarray([self._entry], dtype=np.intp)
        scratch = self._scratch
        slot = self._slot
        # The scratch helpers (claim / dedup_last) are inlined below —
        # this loop runs once per beam round and the call overhead plus
        # repeated attribute lookups were measurable at 10k-node scale.
        visited_row = scratch._visited[slot]
        dedup_row = scratch._dedup
        while self.stage != _DONE:
            epoch = scratch._epochs[slot]  # re-read: each level bumps it
            indptr = self._indptr
            indices = self._indices
            while True:
                # Results are kept distance-sorted, so the first
                # unexpanded positions are the beam's best frontier.
                frontier = (~self._res_expanded).nonzero()[0]
                if frontier.size == 0:
                    break
                take = frontier[: (self._beam if self._ef > 1 else 1)]
                self._res_expanded[take] = True
                ids = self._res_ids[take]
                if ids.size == 1:
                    # Single-row fast path: one slice, and a stored
                    # list never contains duplicates (graph invariant).
                    start = indptr[ids[0]]
                    stop = indptr[ids[0] + 1]
                    if self._trunc is not None:
                        stop = min(stop, start + self._trunc)
                    cand = indices[start:stop]
                else:
                    # Vectorized CSR multi-row gather: concatenate the
                    # frontier's (possibly M-truncated) neighbor slices
                    # with index arithmetic instead of per-node slicing,
                    # then drop cross-row duplicates without a sort
                    # (scatter positions, keep each id's last write).
                    starts = indptr[ids]
                    counts = indptr[ids + 1] - starts
                    if self._trunc is not None:
                        counts = np.minimum(counts, self._trunc)
                    total = int(counts.sum())
                    if total == 0:
                        continue
                    cum0 = counts.cumsum() - counts
                    positions = np.arange(total)
                    gathered = indices[positions + (starts - cum0).repeat(counts)]
                    dedup_row[gathered] = positions
                    cand = gathered[dedup_row[gathered] == positions]
                if cand.size == 0:
                    continue
                unvisited = cand[visited_row[cand] != epoch]
                if unvisited.size == 0:
                    continue
                visited_row[unvisited] = epoch
                self._pending = unvisited
                return unvisited
            self._finish_level()
        return None

    def consume(self, dists: np.ndarray) -> None:
        if self.stage == _SEED:
            self.stage = _SEARCH
            self._begin_level(
                np.asarray([self._entry], dtype=np.intp),
                np.asarray([dists[0]], dtype=np.float64),
            )
            return
        new_ids = self._pending
        self._pending = None
        if self._ef == 1:
            # Greedy-descent fast path: the result set is a single best
            # pair, so the merge reduces to a strict-improvement check.
            # ``argmin`` takes the first minimum in request order — the
            # same pair the stable merge sort below would rank first.
            j = int(dists.argmin())
            if dists[j] < self._res_dists[0]:
                self._res_ids = new_ids[j:j + 1]
                self._res_dists = dists[j:j + 1]
                self._res_expanded = np.zeros(1, dtype=bool)
            return
        if self._res_ids.size >= self._ef:
            keep = dists < self._res_dists[-1]
            new_ids = new_ids[keep]
            dists = dists[keep]
        if new_ids.size == 0:
            return
        cat_ids = np.concatenate([self._res_ids, new_ids])
        cat_dists = np.concatenate([self._res_dists, dists])
        cat_expanded = np.concatenate([
            self._res_expanded, np.zeros(new_ids.size, dtype=bool)
        ])
        # Stable sort on distance alone: ties resolve by merge position
        # (prior results first, then request order), which is itself a
        # deterministic function of the frozen snapshot.
        order = cat_dists.argsort(kind="stable")[: self._ef]
        self._res_ids = cat_ids[order]
        self._res_dists = cat_dists[order]
        self._res_expanded = cat_expanded[order]

    def _begin_level(self, seed_ids: np.ndarray, seed_dists: np.ndarray) -> None:
        lev, ef = self._plan[self._plan_pos]
        if ef > 1 and lev == 0:
            # The bottom-seeds hook speaks (dist, id) pairs; this is the
            # one per-task place the arrays round-trip through Python.
            seeds = self._adapter.bottom_seeds(
                self._computer, self._query,
                list(zip(seed_dists.tolist(), seed_ids.tolist())),
            )
            seed_ids = np.asarray([node for _, node in seeds], dtype=np.intp)
            seed_dists = np.asarray([dist for dist, _ in seeds],
                                    dtype=np.float64)
            order = np.lexsort((seed_ids, seed_dists))[:ef]
            seed_ids = seed_ids[order]
            seed_dists = seed_dists[order]
        elif seed_ids.size > ef:
            seed_ids = seed_ids[:ef]
            seed_dists = seed_dists[:ef]
        self._lev = lev
        self._ef = ef
        csr = self._frozen[lev]
        self._indptr = csr.indptr
        self._indices = csr.indices
        self._scratch.begin(self._slot)
        self._scratch.mark(self._slot, seed_ids)
        self._res_ids = seed_ids
        self._res_dists = seed_dists
        self._res_expanded = np.zeros(seed_ids.size, dtype=bool)

    def _finish_level(self) -> None:
        if self._ef > 1:
            self.found[self._lev] = list(
                zip(self._res_dists.tolist(), self._res_ids.tolist())
            )
        self._plan_pos += 1
        if self._plan_pos >= len(self._plan):
            self.stage = _DONE
            return
        # Carry the sorted results straight into the next level's seeds
        # (descent levels carry only the single best).
        if self._ef > 1:
            self._begin_level(self._res_ids, self._res_dists)
        else:
            self._begin_level(self._res_ids[:1], self._res_dists[:1])


def _run_group(
    tasks: list[_LockstepTask],
    computer,
    queries: np.ndarray,
    metric: Metric,
    base_norms: np.ndarray | None,
    query_norms: np.ndarray | None,
    num_ids: int,
    qstore=None,
) -> None:
    """Drive one group's tasks to completion with batched rounds.

    With ``qstore`` (a :class:`~repro.vectors.quantized_store.QuantizedStore`),
    the distance rounds run on quantized codes — decode-free SQ dot
    products or PQ ADC-table gathers — instead of float32 rows.
    Evaluations still land on ``computer``'s counter: construction cost
    stays one hardware-independent tally either way.
    """
    scratch = _WaveScratch(len(tasks), num_ids)
    for slot, task in enumerate(tasks):
        task.bind(slot, scratch, computer)
    computer.defer_counts()
    try:
        pending: list[tuple[_LockstepTask, np.ndarray]] = []
        for task in tasks:
            ids = task.advance()
            if ids is not None:
                pending.append((task, ids))
        while pending:
            sizes = np.asarray([ids.size for _, ids in pending], dtype=np.intp)
            qrows = np.asarray([t.qrow for t, _ in pending], dtype=np.intp)
            cat_ids = np.concatenate([ids for _, ids in pending])
            qidx = np.repeat(qrows, sizes)
            if qstore is not None:
                dists = qstore.batched_distances(queries, qidx, cat_ids)
            else:
                dists = _batched_distances(
                    computer.base, queries, qidx, cat_ids, metric,
                    base_norms=base_norms, query_norms=query_norms,
                )
            computer.add_count(cat_ids.size)
            offset = 0
            nxt: list[tuple[_LockstepTask, np.ndarray]] = []
            for task, ids in pending:
                task.consume(dists[offset : offset + ids.size])
                offset += ids.size
                more = task.advance()
                if more is not None:
                    nxt.append((task, more))
            pending = nxt
    finally:
        computer.flush_counts()


class _HnswAdapter:
    """Index-specific hooks for :class:`HnswIndex` bulk construction."""

    def __init__(self, index) -> None:
        self.index = index
        self.ef = index.ef_construction
        self.trunc: int | None = None

    def check_capacity(self, last_id: int) -> None:
        pass

    def bottom_seeds(self, computer, query, seeds):
        return seeds

    def register(self, node: int, level: int) -> None:
        self.index.graph.add_node(node, level)

    def link_forward(self, computer, task, select_view, wave_forward, reverse):
        index = self.index
        node = task.node
        for lev in sorted(task.found, reverse=True):
            selected = select_neighbors_heuristic_matrix(
                computer.base, task.found[lev], index.m, metric=index.metric
            )
            index.graph.set_neighbors(node, lev, [nid for _, nid in selected])
            wave_forward[(node, lev)] = [nid for _, nid in selected]
            for dist, neighbor in selected:
                reverse.append((neighbor, node, lev, dist))

    def apply_reverse(self, computer, owner, node, lev, dist, graph_view):
        cap = self.index.m if lev > 0 else self.index.m_max0
        self.index._add_reverse_edge(computer, owner, node, lev, cap)

    def apply_reverse_bulk(self, computer, owner, requests, graph_view):
        """Apply all of one owner's reverse requests with one shrink per level.

        The sequential rule shrinks after every insert; merging first
        and shrinking once selects from the union instead — a different
        (still deterministic) edge set, reserved for multi-node waves.
        """
        index = self.index
        by_lev: dict[int, list[int]] = {}
        for node, lev, dist in requests:
            by_lev.setdefault(lev, []).append(node)
        for lev in sorted(by_lev, reverse=True):
            cap = index.m if lev > 0 else index.m_max0
            neighbor_ids = index.graph.neighbors(owner, lev)
            existing = set(neighbor_ids)
            for node in by_lev[lev]:
                if node not in existing:
                    neighbor_ids.append(node)
                    existing.add(node)
            if len(neighbor_ids) <= cap:
                continue
            ids = np.asarray(neighbor_ids, dtype=np.intp)
            dists = computer.distances_to(computer.base[owner], ids)
            candidates = list(zip(dists.tolist(), neighbor_ids))
            selected = select_neighbors_heuristic_matrix(
                computer.base, candidates, cap, metric=index.metric
            )
            index.graph.set_neighbors(owner, lev, [nid for _, nid in selected])


class _AcornAdapter:
    """Index-specific hooks for ACORN-γ / ACORN-1 bulk construction."""

    def __init__(self, index) -> None:
        self.index = index
        params = index.params
        self.ef = params.effective_ef_construction
        self.trunc = params.m if params.truncate_construction else None

    def check_capacity(self, last_id: int) -> None:
        if last_id >= len(self.index.table):
            raise ValueError(
                f"node {last_id} has no attribute row "
                f"(table has {len(self.index.table)})"
            )

    def bottom_seeds(self, computer, query, seeds):
        return self.index._bottom_seeds(computer, query, seeds)

    def register(self, node: int, level: int) -> None:
        self.index._register_node(node, level)

    def link_forward(self, computer, task, select_view, wave_forward, reverse):
        index = self.index
        node = task.node
        for lev in sorted(task.found, reverse=True):
            candidates = [
                (dist, cand) for dist, cand in task.found[lev] if cand != node
            ][: index.params.max_degree]
            selected = index._select_edges(
                computer, node, candidates, lev,
                graph=select_view, vectorized=True,
            )
            index.graph.set_neighbors(node, lev, [nid for _, nid in selected])
            index._edge_dists[lev][node] = [dist for dist, _ in selected]
            wave_forward[(node, lev)] = [nid for _, nid in selected]
            for dist, neighbor in selected:
                reverse.append((neighbor, node, lev, dist))

    def apply_reverse(self, computer, owner, node, lev, dist, graph_view):
        self.index._add_reverse_edge(
            computer, owner, node, dist, lev,
            graph_view=graph_view, vectorized=True,
        )

    def apply_reverse_bulk(self, computer, owner, requests, graph_view):
        """Apply all of one owner's reverse requests, one prune per level.

        Inserts every request in distance order first (set-probed
        membership instead of the per-request list scan), then enforces
        the cap once.  On uncompressed levels keep-``cap``-smallest is
        associative, so this matches the per-request rule exactly; on
        compressed levels the single re-prune sees the merged candidate
        list — a different (still deterministic) edge set, reserved for
        multi-node waves.
        """
        index = self.index
        params = index.params
        by_lev: dict[int, list[tuple[int, float]]] = {}
        for node, lev, dist in requests:
            by_lev.setdefault(lev, []).append((node, dist))
        for lev in sorted(by_lev, reverse=True):
            neighbor_ids = index.graph.neighbors(owner, lev)
            dists = index._edge_dists[lev][owner]
            existing = set(neighbor_ids)
            for node, dist in by_lev[lev]:
                if node in existing:
                    continue
                pos = bisect.bisect(dists, dist)
                neighbor_ids.insert(pos, node)
                dists.insert(pos, dist)
                existing.add(node)
            if not index._is_compressed(lev):
                cap = index._cap0 if lev == 0 else params.max_degree
                if len(neighbor_ids) > cap:
                    del neighbor_ids[cap:]
                    del dists[cap:]
            elif len(neighbor_ids) > index._cap0:
                candidates = list(zip(dists, neighbor_ids))
                selected = index._select_edges(
                    computer, owner, candidates, level=lev,
                    graph=graph_view, vectorized=True,
                )
                selected = selected[: max(index._cap0 - params.m, 1)]
                index.graph.set_neighbors(
                    owner, lev, [nid for _, nid in selected]
                )
                index._edge_dists[lev][owner] = [d for d, _ in selected]


def _split_chunks(items: list, n_chunks: int) -> list[list]:
    """Deterministic contiguous split of ``items`` into ≤ ``n_chunks``."""
    n_chunks = max(1, min(n_chunks, len(items)))
    bounds = np.linspace(0, len(items), n_chunks + 1).astype(int)
    return [
        items[bounds[i] : bounds[i + 1]]
        for i in range(n_chunks)
        if bounds[i] < bounds[i + 1]
    ]


def _run_wave(index, adapter, wave: list[int], levels: dict[int, int],
              executor: ThreadPoolExecutor | None, n_workers: int) -> None:
    graph, store = index.graph, index.store
    frozen = freeze_graph(graph)
    trunc = adapter.trunc
    if trunc is None:
        def neighbor_fn(node, lev):
            return frozen[lev][node]
    else:
        def neighbor_fn(node, lev):
            return frozen[lev][node][:trunc]

    entry = graph.entry_point
    top = graph.node_level(entry)
    num_ids = len(store)
    metric = index.metric
    base = store.computer().base
    base_norms = store.base_norms()
    queries = np.ascontiguousarray(base[np.asarray(wave, dtype=np.intp)])
    query_norms = (np.linalg.norm(queries, axis=1)
                   if metric is Metric.COSINE else None)

    # Solo waves replay the sequential heap search exactly (wave_cap=1
    # equivalence); larger waves use the beam-batched traversal.  The
    # quantized Phase-A rounds apply only to multi-node waves for the
    # same reason: the sequential reference computes float32 distances,
    # so solo waves must too to stay byte-identical.
    if len(wave) == 1:
        tasks = [
            _LockstepTask(adapter, node, levels[node], entry, top,
                          queries[row], row, neighbor_fn)
            for row, node in enumerate(wave)
        ]
        qstore = None
    else:
        tasks = [
            _BeamTask(adapter, node, levels[node], entry, top,
                      queries[row], row, frozen, trunc)
            for row, node in enumerate(wave)
        ]
        qstore = getattr(index, "_quant", None)

    # Phase A: lockstep batched searches over the frozen snapshot.
    groups = _split_chunks(tasks, n_workers)
    if executor is None or len(groups) == 1:
        for group in groups:
            _run_group(group, store.computer(), queries, metric,
                       base_norms, query_norms, num_ids, qstore=qstore)
    else:
        futures = [
            executor.submit(_run_group, group, store.computer(), queries,
                            metric, base_norms, query_norms, num_ids,
                            qstore=qstore)
            for group in groups
        ]
        for future in futures:
            future.result()

    # Phase B1: register + forward selection, serial in node-id order.
    # Single-node waves read the live graph so they replay the
    # sequential insert exactly; larger waves read the frozen snapshot
    # (identical for B1 — candidates are all pre-wave — but explicit).
    solo = len(tasks) == 1
    select_view = None if solo else _FrozenView(frozen)
    wave_forward: dict[tuple[int, int], list[int]] = {}
    reverse: list[tuple[int, int, int, float]] = []
    b1_computer = store.computer()
    b1_computer.defer_counts()
    try:
        for task in tasks:
            adapter.register(task.node, task.level)
            for lev in range(task.level + 1):
                wave_forward.setdefault((task.node, lev), [])
            adapter.link_forward(b1_computer, task, select_view,
                                 wave_forward, reverse)
    finally:
        b1_computer.flush_counts()

    # Phase B2: reverse edges.  Solo waves apply requests strictly in
    # B1's emit order — (level desc, distance asc), the exact sequence
    # the sequential insert uses.  Order matters beyond each owner's
    # list: a compressed-level re-prune reads *other* owners' live
    # lists for its two-hop sets, so whether a sibling owner has
    # already received this insert's edge can change the kept set.
    # Multi-node waves instead group requests by owner — (node asc,
    # level desc, distance asc) per owner — and re-prune against the
    # immutable wave view, which makes the grouped order a
    # deterministic function of the frozen snapshot.
    if solo:
        computer = store.computer()
        computer.defer_counts()
        try:
            for owner, node, lev, dist in reverse:
                adapter.apply_reverse(computer, owner, node, lev, dist, None)
        finally:
            computer.flush_counts()
    else:
        grouped: dict[int, list[tuple[int, int, float]]] = {}
        for owner, node, lev, dist in reverse:
            grouped.setdefault(owner, []).append((node, lev, dist))
        graph_view = _WaveView(frozen, wave_forward)
        owner_chunks = _split_chunks(sorted(grouped), n_workers)
        stripe = LockStripe()

        def apply_chunk(chunk: list[int]) -> None:
            computer = store.computer()
            computer.defer_counts()
            try:
                for owner in chunk:
                    with stripe.lock(owner):
                        adapter.apply_reverse_bulk(computer, owner,
                                                   grouped[owner], graph_view)
            finally:
                computer.flush_counts()

        if executor is None or len(owner_chunks) == 1:
            for chunk in owner_chunks:
                apply_chunk(chunk)
        else:
            futures = [executor.submit(apply_chunk, chunk)
                       for chunk in owner_chunks]
            for future in futures:
                future.result()

    # Entry-point promotion: replay the sequential rule in id order.
    cur_top = top
    for task in tasks:
        if task.level > cur_top:
            graph.entry_point = task.node
            cur_top = task.level


def _bulk_insert(index, adapter, node_ids: list[int],
                 n_workers: int, wave_cap: int | None) -> None:
    if not node_ids:
        return
    adapter.check_capacity(node_ids[-1])
    graph = index.graph
    # Pre-draw every level in id order: identical RNG stream to the
    # sequential loop, so the level structure matches it exactly.
    levels = {node: index._levels.draw() for node in node_ids}
    start = 0
    if len(graph) == 0:
        first = node_ids[0]
        adapter.register(first, levels[first])
        graph.entry_point = first
        start = 1
    pending = node_ids[start:]
    cap = wave_cap if wave_cap is not None else default_wave_cap(len(node_ids))
    executor = ThreadPoolExecutor(max_workers=n_workers) if n_workers > 1 else None
    try:
        offset = 0
        for size in wave_schedule(len(pending), cap):
            wave = pending[offset : offset + size]
            offset += size
            _run_wave(index, adapter, wave, levels, executor, n_workers)
    finally:
        if executor is not None:
            executor.shutdown()
    index._frozen = None


def bulk_insert_hnsw(index, vectors: np.ndarray, n_workers: int = 2,
                     wave_cap: int | None = None) -> np.ndarray:
    """Wave-insert ``vectors`` into an :class:`~repro.hnsw.hnsw.HnswIndex`.

    Returns the new node ids.  ``HnswIndex.build(n_workers>1)`` routes
    here; see the module docstring for the determinism contract.
    """
    ids = index.store.add_many(vectors)
    index._frozen = None
    if getattr(index, "quantization", None) is not None:
        # Train + encode before the waves so Phase A can run its
        # distance rounds on codes (solo waves stay float32).
        index._quant_store()
    _bulk_insert(index, _HnswAdapter(index), ids.tolist(), n_workers, wave_cap)
    return ids


def bulk_insert_acorn(index, vectors: np.ndarray, n_workers: int = 2,
                      wave_cap: int | None = None) -> np.ndarray:
    """Wave-insert ``vectors`` into an ACORN-γ or ACORN-1 index.

    Returns the new node ids.  ``AcornIndex.build(n_workers>1)`` and
    ``AcornOneIndex.build(n_workers>1)`` route here.  The flat
    substrate keeps its sequential build (its ``_bottom_seeds``
    override seeds construction searches from the *live* graph, which
    the frozen-snapshot contract cannot honour).
    """
    ids = index.store.add_many(vectors)
    index._frozen = None
    if getattr(index, "quantization", None) is not None:
        index._quant_store()
    _bulk_insert(index, _AcornAdapter(index), ids.tolist(), n_workers, wave_cap)
    return ids
