"""The ACORN-γ and ACORN-1 indices (paper §5).

Both are HNSW-shaped hierarchical graphs whose search traverses the
*predicate subgraph* — the subgraph induced by entities passing the
query predicate — to emulate a per-predicate oracle partition that is
never actually built.

``AcornIndex`` (ACORN-γ) densifies the graph during construction:
each node collects M·γ candidate edges, levels ≥ 1 store all of them,
and level 0 is compressed with the predicate-agnostic Mβ pruning rule.
``AcornOneIndex`` (ACORN-1) builds a plain unpruned HNSW (γ=1, Mβ=M)
and recovers density at search time via full 2-hop expansion.
"""

from __future__ import annotations

import bisect
import hashlib
import threading

import numpy as np

from repro.attributes.table import AttributeTable
from repro.core import construction as cons
from repro.core.params import AcornParams, PruningStrategy
from repro.core.search import (
    FrozenLevel,
    assert_frozen,
    attach_expansion,
    compressed_neighbors,
    expanded_neighbors,
    filtered_neighbors,
    freeze_graph,
)
from repro.engine.batching import BatchSearchMixin
from repro.hnsw.graph import LayeredGraph
from repro.hnsw.hnsw import SearchResult
from repro.hnsw.levels import LevelGenerator
from repro.hnsw.scratch import thread_scratch
from repro.hnsw.traversal import TraversalStats, search_layer
from repro.predicates.base import CompiledPredicate, Predicate
from repro.vectors.distance import DistanceComputer, Metric
from repro.vectors.quantized_store import (
    QuantizedStore,
    rerank_budget,
    resolve_quantization,
)
from repro.vectors.store import VectorStore


class AcornIndex(BatchSearchMixin):
    """ACORN-γ: a predicate-agnostic hybrid-search index.

    Args:
        dim: vector dimensionality.
        table: structured attributes of the (eventual) entities; used to
            compile query predicates into masks.  Entity ``i`` of the
            table corresponds to node id ``i`` — vectors must be added
            in table-row order.
        params: construction parameters (M, γ, Mβ, efc, pruning rule).
        metric: distance metric.
        seed: level-assignment seed.
        labels: single-attribute integer labels, required only by the
            metadata-aware RNG pruning ablation (Figure 12).
        quantization: None (default, float32 search), a codec kind
            (``"sq8"``/``"pq"``), or a
            :class:`~repro.vectors.quantized_store.QuantizationConfig`.
            When set, the bottom-level traversal ranks candidates by
            quantized distances and an exact float32 tail re-scores
            ``rerank_factor * k`` of them (``docs/quantization.md``).
    """

    def __init__(
        self,
        dim: int,
        table: AttributeTable,
        params: AcornParams | None = None,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
        labels: np.ndarray | None = None,
        quantization=None,
    ) -> None:
        self.params = params if params is not None else AcornParams()
        self.table = table
        self.store = VectorStore(dim, metric=metric)
        self.graph = LayeredGraph()
        level_base = (
            self.params.max_degree
            if self.params.flatten_levels
            else self.params.m
        )
        self._levels = LevelGenerator(max(level_base, 2), seed=seed)
        self._edge_dists: list[dict[int, list[float]]] = []
        self._labels = labels
        if self.params.pruning is PruningStrategy.RNG_METADATA and labels is None:
            raise ValueError("metadata-aware pruning requires `labels`")
        self.pruning_stats = cons.PruningStats()
        self._frozen: list[FrozenLevel] | None = None
        self.quantization = resolve_quantization(quantization)
        self._quant: QuantizedStore | None = None
        self._deleted: set[int] = set()
        # Tombstone-composed predicate masks, keyed on (mask identity,
        # deleted-set version); see _effective_mask.
        self._deleted_version = 0
        self._mask_cache: dict[int, tuple[np.ndarray, int, np.ndarray]] = {}
        self._mask_cache_lock = threading.Lock()
        # Predicate-filtered bottom-level CSRs for the lockstep
        # quantized kernel, keyed on (mask identity, source-CSR
        # identity); see _masked_expansion.
        self._masked_csr_cache: dict = {}
        self._masked_csr_lock = threading.Lock()
        # Level-0 shrink triggers: pruned indexes re-prune once a list
        # outgrows M·γ (the pruning rule's own |H| + kept budget); an
        # unpruned one keeps nearest up to 2·M·γ (mirroring HNSW's 2M
        # with γ=1).  Tighter caps would break the search-time 2-hop
        # recovery, which needs list entries past Mβ to expand.
        p = self.params
        if p.pruning is PruningStrategy.NONE:
            self._cap0 = 2 * p.max_degree
        else:
            self._cap0 = p.max_degree

    def __len__(self) -> int:
        return len(self.store)

    @property
    def metric(self) -> Metric:
        """The configured distance metric."""
        return self.store.metric

    # ------------------------------------------------------------------
    # Construction (paper §5.2)
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        table: AttributeTable,
        params: AcornParams | None = None,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
        labels: np.ndarray | None = None,
        n_workers: int = 1,
        wave_cap: int | None = None,
        quantization=None,
    ) -> "AcornIndex":
        """Construct an index over ``vectors`` aligned with ``table`` rows.

        Args:
            n_workers: build parallelism.  1 (default) keeps the
                sequential insert loop, the byte-identical reference.
                Greater values use the wave-parallel GEMM-batched
                pipeline (:mod:`repro.core.bulkbuild`): run-to-run
                deterministic for a fixed seed, recall-equivalent but
                not edge-identical to the sequential graph.
            wave_cap: maximum wave size for the parallel pipeline
                (default scales with ``n``); ignored when
                ``n_workers == 1``.
            quantization: forwarded to the constructor; a parallel
                build additionally runs its Phase-A distance batches on
                the quantized codes (see :mod:`repro.core.bulkbuild`).
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(table) < vectors.shape[0]:
            # A larger table is allowed: extra rows serve later inserts.
            raise ValueError(
                f"table has {len(table)} rows but got {vectors.shape[0]} vectors"
            )
        index = cls(vectors.shape[1], table, params=params, metric=metric,
                    seed=seed, labels=labels, quantization=quantization)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if n_workers > 1:
            from repro.core.bulkbuild import bulk_insert_acorn

            bulk_insert_acorn(index, vectors, n_workers=n_workers,
                              wave_cap=wave_cap)
        else:
            for vector in vectors:
                index.add(vector)
        return index

    def add(self, vector: np.ndarray) -> int:
        """Insert one vector; returns its node id (== its table row)."""
        node = self.store.add(vector)
        if node >= len(self.table):
            raise ValueError(
                f"node {node} has no attribute row (table has {len(self.table)})"
            )
        self._frozen = None
        trunc = self.params.m if self.params.truncate_construction else None
        level = self._levels.draw()
        if len(self.graph) == 0:
            self._register_node(node, level)
            self.graph.entry_point = node
            return node

        computer = self.store.computer()
        computer.defer_counts()
        try:
            query = computer.set_query(vector)
            entry = self.graph.entry_point
            top = self.graph.node_level(entry)
            best = (computer.distance_one(query, entry), entry)

            # Greedy descent above the node's level, truncated-M lookups.
            for lev in range(top, level, -1):
                best = self._greedy_step(computer, query, best, lev)

            self._register_node(node, level)
            ef_cand = self.params.effective_ef_construction
            scratch = thread_scratch(len(self.store))
            entry_points = [best]
            for lev in range(min(level, top), -1, -1):
                if lev == 0:
                    entry_points = self._bottom_seeds(computer, query,
                                                      entry_points)
                scratch.begin(len(self.store))
                for _, seed_node in entry_points:
                    scratch.mark(seed_node)
                found = search_layer(
                    computer,
                    query,
                    entry_points,
                    ef=ef_cand,
                    neighbor_fn=lambda c, lev=lev: self.graph.neighbors(c, lev)[:trunc],
                    scratch=scratch,
                )
                # The node under insertion is already registered; seed
                # hooks (flat substrate) could surface it — never
                # self-link.
                candidates = [
                    (dist, cand) for dist, cand in found if cand != node
                ][: self.params.max_degree]
                selected = self._select_edges(computer, node, candidates, lev)
                self.graph.set_neighbors(node, lev, [nid for _, nid in selected])
                self._edge_dists[lev][node] = [dist for dist, _ in selected]
                for dist, neighbor in selected:
                    self._add_reverse_edge(computer, neighbor, node, dist, lev)
                entry_points = found

            if level > top:
                self.graph.entry_point = node
        finally:
            computer.flush_counts()
        return node

    def _register_node(self, node: int, level: int) -> None:
        self.graph.add_node(node, level)
        while len(self._edge_dists) <= level:
            self._edge_dists.append({})
        for lev in range(level + 1):
            self._edge_dists[lev].setdefault(node, [])

    def _greedy_step(
        self,
        computer: DistanceComputer,
        query: np.ndarray,
        best: tuple[float, int],
        level: int,
    ) -> tuple[float, int]:
        trunc = self.params.m if self.params.truncate_construction else None
        scratch = thread_scratch(len(self.store))
        scratch.begin(len(self.store))
        scratch.mark(best[1])
        found = search_layer(
            computer, query, [best], ef=1,
            neighbor_fn=lambda c: self.graph.neighbors(c, level)[:trunc],
            scratch=scratch,
        )
        return found[0]

    def _is_compressed(self, level: int) -> bool:
        """Whether ``level`` stores pruned lists (bottom-up nc levels)."""
        return (
            level < self.params.compressed_levels
            and self.params.pruning is not PruningStrategy.NONE
        )

    def _select_edges(
        self,
        computer: DistanceComputer,
        node: int,
        candidates: list[tuple[float, int]],
        level: int,
        graph=None,
        vectorized: bool = False,
    ) -> list[tuple[float, int]]:
        """Choose the final edge list from the M·γ nearest candidates.

        Uncompressed levels keep every candidate (the expanded lists are
        the whole point); compressed levels — the bottom ``nc`` levels,
        per §6.1's generalization — apply the configured pruning rule.

        Args:
            graph: adjacency the ACORN rule reads its 2-hop sets from;
                defaults to the live graph.  The bulk builder passes an
                immutable pre-wave snapshot view so concurrent wave
                workers never observe each other's in-flight edits.
            vectorized: dispatch to the candidate-matrix /
                membership-buffer pruning variants (same kept edges,
                one batched evaluation instead of per-pair kernel
                calls); the sequential insert path keeps the scalar
                reference rules.
        """
        if not self._is_compressed(level):
            return candidates
        pruning = self.params.pruning
        if graph is None:
            graph = self.graph
        if pruning is PruningStrategy.ACORN:
            if vectorized:
                return cons.prune_predicate_agnostic_arrays(
                    candidates,
                    lambda c, lev=level: graph.neighbors(c, lev),
                    num_ids=len(self.store),
                    m_beta=self.params.m_beta,
                    max_degree=self.params.max_degree,
                    stats=self.pruning_stats,
                )
            return cons.prune_predicate_agnostic(
                candidates, graph, level=level,
                m_beta=self.params.m_beta,
                max_degree=self.params.max_degree,
                stats=self.pruning_stats,
            )
        if pruning is PruningStrategy.RNG_BLIND:
            blind = (cons.prune_rng_blind_matrix if vectorized
                     else cons.prune_rng_blind)
            return blind(
                candidates, computer.base, self.params.max_degree,
                metric=self.metric, stats=self.pruning_stats,
            )
        metadata = (cons.prune_rng_metadata_matrix if vectorized
                    else cons.prune_rng_metadata)
        return metadata(
            candidates, computer.base, self._labels, node,
            self.params.max_degree, metric=self.metric,
            stats=self.pruning_stats,
        )

    def _add_reverse_edge(
        self,
        computer: DistanceComputer,
        owner: int,
        new_neighbor: int,
        dist: float,
        level: int,
        graph_view=None,
        vectorized: bool = False,
    ) -> None:
        """Insert ``owner -> new_neighbor`` in distance order; shrink on overflow.

        ``graph_view``/``vectorized`` are forwarded to the re-pruning
        dispatch (see :meth:`_select_edges`); the sequential path leaves
        them at their defaults.
        """
        neighbor_ids = self.graph.neighbors(owner, level)
        dists = self._edge_dists[level][owner]
        if new_neighbor in neighbor_ids:
            return
        pos = bisect.bisect(dists, dist)
        neighbor_ids.insert(pos, new_neighbor)
        dists.insert(pos, dist)

        if not self._is_compressed(level):
            cap = self._cap0 if level == 0 else self.params.max_degree
            if len(neighbor_ids) > cap:
                neighbor_ids.pop()
                dists.pop()
            return
        if len(neighbor_ids) <= self._cap0:
            return
        candidates = list(zip(dists, neighbor_ids))
        selected = self._select_edges(computer, owner, candidates, level=level,
                                      graph=graph_view, vectorized=vectorized)
        # The pruning rule's |H|+kept budget does not bind while the
        # two-hop sets are still small (early construction), so enforce
        # the cap explicitly — minus an M-wide low-watermark so a full
        # list buys M insertions of headroom before re-pruning (without
        # it, a list parked at the cap re-prunes on every insert).
        selected = selected[: max(self._cap0 - self.params.m, 1)]
        self.graph.set_neighbors(owner, level, [nid for _, nid in selected])
        self._edge_dists[level][owner] = [d for d, _ in selected]

    # ------------------------------------------------------------------
    # Search (paper §5.1, Algorithm 2)
    # ------------------------------------------------------------------

    def _adjacency(self) -> list[FrozenLevel]:
        if self._frozen is None:
            frozen = freeze_graph(self.graph)
            self._attach_expansions(frozen)
            self._frozen = frozen
        return self._frozen

    def _attach_expansions(self, frozen: list[FrozenLevel]) -> None:
        """Materialize compressed-level expansion lists on the snapshot.

        Done while the snapshot is built (before it is published to
        ``_frozen``), so engine workers only ever read a complete one.
        Levels whose expansion would blow the size bound keep the
        dynamic per-hop lookup (see
        :func:`~repro.core.search.attach_expansion`).
        """
        for level in range(len(frozen)):
            if self._is_compressed(level):
                attach_expansion(frozen[level], self.params.m_beta)

    def freeze(self) -> list[FrozenLevel]:
        """Materialize (and cache) the read-only adjacency snapshot.

        The batch engine calls this before fanning a batch across
        threads so every worker shares one immutable snapshot instead of
        racing to build it.  The snapshot honours the
        :func:`~repro.core.search.freeze_graph` immutability contract
        (verified here); it is invalidated by :meth:`add`.
        """
        frozen = self._adjacency()
        assert_frozen(frozen)
        return frozen

    def _neighbor_fn(self, level: int, mask: np.ndarray):
        """The per-level neighbor-lookup strategy for ACORN-γ.

        Uncompressed levels use the filter strategy over the stored
        (M·γ-wide) lists; the compressed level 0 uses the 2-hop
        expansion lookup that recovers pruned edges.
        """
        adjacency = self._adjacency()[level]
        if self._is_compressed(level):
            m_beta = self.params.m_beta
            return lambda c: compressed_neighbors(adjacency, c, mask, m_beta)
        return lambda c: filtered_neighbors(adjacency, c, mask)

    # ------------------------------------------------------------------
    # Quantization
    # ------------------------------------------------------------------

    def enable_quantization(self, config="sq8") -> None:
        """Activate (or with None, deactivate) the quantized hot path.

        Trains the codec on the currently stored vectors; later inserts
        are encoded with the frozen codec at the next search.
        """
        self.quantization = resolve_quantization(config)
        self._quant = None
        if self.quantization is not None and len(self.store):
            self._quant_store()

    def _quant_store(self) -> QuantizedStore | None:
        """The code mirror, trained lazily and synced to the store."""
        if self.quantization is None or len(self.store) == 0:
            return None
        if self._quant is None:
            qs = QuantizedStore(self.quantization, self.metric)
            qs.train(self.store.vectors)
            self._quant = qs
        self._quant.sync(self.store)
        return self._quant

    def _quant_level0(self, frozen0: FrozenLevel, mask: np.ndarray):
        """Bottom-level candidate source for the quantized beam kernel.

        Returns ``(indptr, indices, mask, neighbor_fn)``: a CSR pair
        (the raw adjacency for the filter strategy, or the materialized
        expansion lists for the compressed lookup) with the predicate
        mask applied post-gather — or, when no expansion was
        materialized, a per-node fallback on the index's regular
        neighbor strategy.
        """
        if self._is_compressed(0):
            expansion = frozen0._expansions.get(self.params.m_beta)
            if expansion is not None:
                return expansion[0], expansion[1], mask, None
            return None, None, None, self._neighbor_fn(0, mask)
        return frozen0.indptr, frozen0.indices, mask, None

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
        entry_point: int | None = None,
        monitor=None,
    ) -> SearchResult:
        """Hybrid search: K nearest neighbors passing ``predicate``.

        Implements the two-stage traversal of §6.3.2 — filtering-only
        descent from the fixed entry point until the predicate subgraph
        is reached, then best-first traversal of the subgraph with the
        dynamic list ``ef_search``.

        Args:
            entry_point: start node override (defaults to the index's
                fixed entry point; used by the entry-point ablation).
            monitor: optional walk-budget hook for the bottom-level
                traversal (see :class:`repro.routing.monitor.WalkMonitor`
                and the adaptive planner's fallback); None keeps the
                default search path untouched.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        compiled = self._compile(predicate)
        if len(self.graph) == 0:
            return SearchResult(
                np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float32), 0
            )
        computer = self.store.computer()
        qstore = self._quant_store()
        computer.defer_counts()
        try:
            query = computer.set_query(query)
            mask = self._effective_mask(compiled.mask)

            tstats = TraversalStats()
            scratch = thread_scratch(len(self.store))
            entry = (self.graph.entry_point if entry_point is None
                     else entry_point)
            best = (computer.distance_one(query, entry), entry)
            tstats.visited += 1
            # One scratch buffer serves the whole descent: each level
            # opens a fresh epoch instead of allocating O(N) booleans.
            for lev in range(self.graph.node_level(entry), 0, -1):
                scratch.begin(len(self.store))
                scratch.mark(best[1])
                found = search_layer(
                    computer, query, [best], ef=1,
                    neighbor_fn=self._neighbor_fn(lev, mask),
                    scratch=scratch, stats=tstats,
                )
                best = found[0]

            entry_points = self._bottom_seeds(computer, query, [best])
            tstats.visited += len(entry_points)
            if qstore is not None:
                return self._search_bottom_quantized(
                    computer, qstore, query, mask, entry_points, k,
                    max(ef_search, k), tstats, monitor,
                )
            scratch.begin(len(self.store))
            for _, seed_node in entry_points:
                scratch.mark(seed_node)
            found = search_layer(
                computer, query, entry_points, ef=max(ef_search, k),
                neighbor_fn=self._neighbor_fn(0, mask), scratch=scratch,
                stats=tstats, monitor=monitor,
            )
        finally:
            computer.flush_counts()
        # Seeds may fail the predicate (the fixed entry point need not
        # pass); every expanded node passed the filter, so one final
        # mask application yields the hybrid result set.
        passing = [(dist, nid) for dist, nid in found if mask[nid]][:k]
        return SearchResult(
            np.asarray([nid for _, nid in passing], dtype=np.intp),
            np.asarray([dist for dist, _ in passing], dtype=np.float32),
            computer.count,
            hops=tstats.hops,
            visited_nodes=tstats.visited,
        )

    def _search_bottom_quantized(
        self,
        computer: DistanceComputer,
        qstore: QuantizedStore,
        query: np.ndarray,
        mask: np.ndarray,
        entry_points: list[tuple[float, int]],
        k: int,
        ef: int,
        tstats: TraversalStats,
        monitor,
    ) -> SearchResult:
        """Quantized bottom-level beam search + exact rerank tail.

        The descent already ran in float32 (few, high-leverage
        distances); only the bottom-level traversal — where nearly all
        evaluations happen — ranks by quantized distances.
        """
        from repro.core.quantsearch import exact_rerank, quantized_search_layer

        qcomp = qstore.computer()
        qcomp.set_query(query)
        seed_ids = np.unique(
            np.asarray([nid for _, nid in entry_points], dtype=np.intp)
        )
        seed_dists = qcomp.distances(seed_ids)
        frozen0 = self._adjacency()[0]
        indptr, indices, kmask, neighbor_fn = self._quant_level0(frozen0, mask)
        found_ids, _ = quantized_search_layer(
            qcomp, seed_ids, seed_dists, ef,
            indptr=indptr, indices=indices, mask=kmask,
            neighbor_fn=neighbor_fn, num_ids=frozen0.num_ids,
            stats=tstats, monitor=monitor,
        )
        # Seeds may fail the predicate; everything else was
        # mask-filtered before scoring.
        passing = found_ids[mask[found_ids]]
        rf = self.quantization.rerank_factor
        ids, dists, n_rerank = exact_rerank(
            computer, query, passing, k, rerank_budget(k, rf)
        )
        return SearchResult(
            ids, dists, computer.count,
            hops=tstats.hops, visited_nodes=tstats.visited,
            quantized_distances=qcomp.count,
            rerank_distances=n_rerank, rerank_factor=rf,
        )

    def _masked_expansion(
        self, indptr: np.ndarray, indices: np.ndarray, mask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The bottom-level candidate CSR restricted to one predicate.

        Materializing the predicate subgraph's candidate lists once per
        distinct mask shrinks every lockstep gather by the predicate's
        selectivity (and drops the per-round mask lookup entirely);
        int32 indices halve the remaining memory traffic.  Cached keyed
        on (mask *content* digest, source-CSR identity) — content
        rather than object identity so re-compiling the same predicate
        (a fresh but equal mask array) still hits — with the source
        ``indices`` array pinned to guard against id reuse.
        """
        key = (hashlib.sha1(mask.tobytes()).digest(), id(indices))
        with self._masked_csr_lock:
            hit = self._masked_csr_cache.get(key)
            if hit is not None and hit[0] is indices:
                return hit[1], hit[2]
        kept = mask[indices]
        cumulative = np.zeros(indices.size + 1, dtype=np.int64)
        np.cumsum(kept, out=cumulative[1:])
        f_indptr = cumulative[indptr]
        f_indices = indices[kept].astype(np.int32, copy=False)
        with self._masked_csr_lock:
            if len(self._masked_csr_cache) >= 8:
                self._masked_csr_cache.pop(
                    next(iter(self._masked_csr_cache))
                )
            self._masked_csr_cache[key] = (indices, f_indptr, f_indices)
        return f_indptr, f_indices

    def search_batch_quantized(
        self,
        queries: np.ndarray,
        predicates,
        k: int,
        ef_search: int = 64,
        beam: int | None = None,
    ) -> list[SearchResult]:
        """Answer a whole batch on the quantized hot path in lockstep.

        The per-query :meth:`search` already ranks the bottom level by
        quantized distances; this method additionally amortizes the
        traversal's Python overhead across the batch via
        :func:`~repro.core.quantsearch.quantized_search_batch` — each
        round gathers every query's frontier together and evaluates one
        batched code-distance call, the serving-side counterpart of the
        bulk builder's GEMM-batched Phase A.  Descents stay per-query
        float32 (few, high-leverage distances), and each query gets the
        standard exact-rerank tail.

        Deterministic: each query's walk reads only its own frontier
        and eligibility row, so results depend on the frozen index and
        the query alone — two runs over the same batch are identical.

        Args:
            queries: ``(nq, dim)`` float32 query matrix.
            predicates: one ``Predicate`` / ``CompiledPredicate`` per
                query.
            k: neighbors per query.
            ef_search: dynamic-list size (clamped up to ``k``).
            beam: frontier nodes expanded per lockstep round; ``None``
                uses the kernel default.

        Returns:
            One :class:`~repro.hnsw.hnsw.SearchResult` per query, with
            the same counters the per-query quantized path reports.

        Raises:
            RuntimeError: when quantization is not enabled.
        """
        from repro.core.quantsearch import exact_rerank, quantized_search_batch

        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be a 2-D (nq, dim) matrix, got shape "
                f"{queries.shape}"
            )
        predicates = list(predicates)
        if len(predicates) != queries.shape[0]:
            raise ValueError(
                f"{queries.shape[0]} queries but {len(predicates)} predicates"
            )
        qstore = self._quant_store()
        if qstore is None:
            raise RuntimeError(
                "search_batch_quantized requires quantization to be "
                "enabled on the index (build with quantization=... or "
                "call enable_quantization)"
            )
        nq = queries.shape[0]
        if nq == 0 or len(self.graph) == 0:
            return [
                SearchResult(
                    np.empty(0, dtype=np.intp),
                    np.empty(0, dtype=np.float32), 0,
                )
                for _ in range(nq)
            ]
        compiled = [self._compile(p) for p in predicates]
        masks = [self._effective_mask(c.mask) for c in compiled]
        frozen0 = self._adjacency()[0]
        indptr, indices, _kmask, neighbor_fn = self._quant_level0(
            frozen0, masks[0]
        )
        if indptr is None:
            # No materialized CSR (dynamic-expansion fallback): the
            # lockstep kernel needs one, so fall back to per-query
            # quantized searches.
            return [
                self.search(queries[i], compiled[i], k, ef_search=ef_search)
                for i in range(nq)
            ]

        ef = max(ef_search, k)
        computer = self.store.computer()
        computer.defer_counts()
        try:
            tstats = [TraversalStats() for _ in range(nq)]
            descent_counts = np.zeros(nq, dtype=np.int64)
            seed_nodes = np.empty(nq, dtype=np.int64)
            scratch = thread_scratch(len(self.store))
            entry = self.graph.entry_point
            top = self.graph.node_level(entry)
            for i in range(nq):
                before = computer.count
                query = computer.set_query(queries[i])
                best = (computer.distance_one(query, entry), entry)
                tstats[i].visited += 1
                for lev in range(top, 0, -1):
                    scratch.begin(len(self.store))
                    scratch.mark(best[1])
                    found = search_layer(
                        computer, query, [best], ef=1,
                        neighbor_fn=self._neighbor_fn(lev, masks[i]),
                        scratch=scratch, stats=tstats[i],
                    )
                    best = found[0]
                seed_nodes[i] = best[1]
                descent_counts[i] = computer.count - before

            # Lockstep per mask group: queries sharing a predicate run
            # over one predicate-filtered CSR (built once, cached), so
            # every gather is already selectivity-narrow and needs no
            # per-round mask lookup.
            num_ids = frozen0.num_ids
            groups: dict[bytes, list[int]] = {}
            for i, m in enumerate(masks):
                groups.setdefault(hashlib.sha1(m.tobytes()).digest(),
                                  []).append(i)
            res_ids = np.full((nq, ef), -1, dtype=np.int64)
            hops = np.zeros(nq, dtype=np.int64)
            visited = np.zeros(nq, dtype=np.int64)
            qevals = np.zeros(nq, dtype=np.int64)
            for members in groups.values():
                sel = np.asarray(members, dtype=np.intp)
                f_indptr, f_indices = self._masked_expansion(
                    indptr, indices, masks[members[0]]
                )
                eligible = np.ones((sel.size, num_ids), dtype=bool)
                kernel_kwargs = {} if beam is None else {"beam": int(beam)}
                g_ids, _g_dists, g_hops, g_vis, g_qe = (
                    quantized_search_batch(
                        qstore, queries[sel], seed_nodes[sel], ef,
                        f_indptr, f_indices, eligible, **kernel_kwargs,
                    )
                )
                res_ids[sel] = g_ids
                hops[sel] = g_hops
                visited[sel] = g_vis
                qevals[sel] = g_qe

            rf = self.quantization.rerank_factor
            budget = rerank_budget(k, rf)
            results = []
            for i in range(nq):
                row = res_ids[i]
                found_ids = row[row >= 0]
                passing = found_ids[masks[i][found_ids]]
                before = computer.count
                ids, dists, n_rerank = exact_rerank(
                    computer, queries[i], passing, k, budget
                )
                results.append(SearchResult(
                    ids, dists,
                    int(descent_counts[i]) + (computer.count - before),
                    hops=tstats[i].hops + int(hops[i]),
                    visited_nodes=tstats[i].visited + int(visited[i]),
                    quantized_distances=int(qevals[i]),
                    rerank_distances=n_rerank,
                    rerank_factor=rf,
                ))
        finally:
            computer.flush_counts()
        return results

    def _effective_mask(self, mask: np.ndarray) -> np.ndarray:
        """The predicate mask with tombstones composed in, cached.

        Tombstones compose with the predicate: a deleted entity simply
        never passes, exactly like a failing attribute.  The composed
        mask is cached keyed on (mask identity, deleted-set version), so
        a batch reusing one compiled predicate pays the O(N) copy once
        instead of per query.  Entries pin the source mask object, so an
        ``id`` can never be recycled while its entry is live.
        """
        if not self._deleted:
            return mask
        key = id(mask)
        version = self._deleted_version
        with self._mask_cache_lock:
            hit = self._mask_cache.get(key)
            if (hit is not None and hit[0] is mask and hit[1] == version):
                return hit[2]
            composed = mask.copy()
            composed[list(self._deleted)] = False
            composed.setflags(write=False)
            if len(self._mask_cache) >= 8:
                self._mask_cache.pop(next(iter(self._mask_cache)))
            self._mask_cache[key] = (mask, version, composed)
            return composed

    def _bottom_seeds(
        self,
        computer: DistanceComputer,
        query: np.ndarray,
        seeds: list[tuple[float, int]],
    ) -> list[tuple[float, int]]:
        """Entry points for the bottom-level traversal.

        The hierarchical index needs only the descent's best node: its
        upper levels already routed the query.  Flat substrates override
        this to add spread-out extra seeds (they have no hierarchy to
        route with) — during both search and construction, since a flat
        graph built with single-seed candidate searches fragments.
        """
        return seeds

    # ``search_batch`` comes from BatchSearchMixin: batches run through
    # repro.engine (predicate-mask caching, optional thread fan-out,
    # per-query QueryStats) and return list[SearchResult] as before.

    def _compile(self, predicate: "Predicate | CompiledPredicate") -> CompiledPredicate:
        if isinstance(predicate, CompiledPredicate):
            if len(predicate) != len(self.table):
                raise ValueError(
                    f"compiled predicate covers {len(predicate)} entities, "
                    f"table has {len(self.table)}"
                )
            return predicate
        return predicate.compile(self.table)

    # ------------------------------------------------------------------
    # Deletion (tombstones)
    # ------------------------------------------------------------------

    def mark_deleted(self, node_id: int) -> None:
        """Tombstone an entity: it disappears from all search results.

        The node's edges remain in the graph (it can still relay
        traversal through its 2-hop expansions), mirroring how
        production graph indexes handle deletes without a rebuild.
        Heavy delete fractions should trigger a rebuild.
        """
        if not 0 <= node_id < len(self.store):
            raise IndexError(f"node {node_id} out of range [0, {len(self.store)})")
        self._deleted.add(node_id)
        self._deleted_version += 1

    def unmark_deleted(self, node_id: int) -> None:
        """Remove a tombstone (no-op if the node is not deleted)."""
        self._deleted.discard(node_id)
        self._deleted_version += 1

    def is_deleted(self, node_id: int) -> bool:
        """Whether ``node_id`` is tombstoned."""
        return node_id in self._deleted

    @property
    def num_deleted(self) -> int:
        """Number of tombstoned entities."""
        return len(self._deleted)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def nbytes(self) -> int:
        """Vector payload + adjacency footprint (Table 5 methodology)."""
        return self.store.nbytes() + self.graph.nbytes()

    def out_degree_by_level(self) -> dict[int, float]:
        """Average out-degree per level (Table 6 methodology)."""
        return {
            lev: self.graph.average_out_degree(lev)
            for lev in range(self.graph.max_level + 1)
        }

    def stats(self) -> dict:
        """A structured summary of the built index.

        Returns a dict with size, level populations/degrees, parameter
        values, and pruning counters — what an operator would log after
        a build.
        """
        graph = self.graph
        return {
            "num_vectors": len(self.store),
            "num_deleted": self.num_deleted,
            "dim": self.store.dim,
            "metric": self.metric.value,
            "levels": graph.max_level + 1,
            "level_population": [
                graph.num_nodes_at_level(lev)
                for lev in range(graph.max_level + 1)
            ],
            "avg_out_degree": self.out_degree_by_level(),
            "nbytes": self.nbytes(),
            "quantization": (self.quantization.kind
                             if self.quantization is not None else None),
            "params": {
                "m": self.params.m,
                "gamma": self.params.gamma,
                "m_beta": self.params.m_beta,
                "ef_construction": self.params.ef_construction,
                "pruning": self.params.pruning.value,
                "compressed_levels": self.params.compressed_levels,
                "s_min": self.params.s_min,
            },
            "pruning": {
                "nodes_pruned": self.pruning_stats.nodes_pruned,
                "candidates_dropped": self.pruning_stats.candidates_dropped,
            },
        }


class AcornOneIndex(AcornIndex):
    """ACORN-1: HNSW-without-pruning construction, 2-hop search (§5.3).

    Construction fixes γ = 1 and Mβ = M — each node keeps its M nearest
    candidates per level, no RNG pruning — minimizing TTI and index
    size.  Search approximates ACORN-γ's dense lists by expanding every
    visited node's full one-hop + two-hop neighborhood before filtering
    and truncating to M (Figure 4c).
    """

    def __init__(
        self,
        dim: int,
        table: AttributeTable,
        m: int = 32,
        ef_construction: int = 40,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
        quantization=None,
    ) -> None:
        super().__init__(
            dim,
            table,
            params=AcornParams.acorn_1(m=m, ef_construction=ef_construction),
            metric=metric,
            seed=seed,
            quantization=quantization,
        )

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        table: AttributeTable,
        m: int = 32,
        ef_construction: int = 40,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
        n_workers: int = 1,
        wave_cap: int | None = None,
        quantization=None,
    ) -> "AcornOneIndex":
        """Construct an ACORN-1 index over ``vectors``.

        ``n_workers``/``wave_cap`` follow :meth:`AcornIndex.build`:
        1 keeps the sequential reference loop, more routes through the
        wave-parallel pipeline.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(table) < vectors.shape[0]:
            # A larger table is allowed: extra rows serve later inserts.
            raise ValueError(
                f"table has {len(table)} rows but got {vectors.shape[0]} vectors"
            )
        index = cls(vectors.shape[1], table, m=m,
                    ef_construction=ef_construction, metric=metric, seed=seed,
                    quantization=quantization)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if n_workers > 1:
            from repro.core.bulkbuild import bulk_insert_acorn

            bulk_insert_acorn(index, vectors, n_workers=n_workers,
                              wave_cap=wave_cap)
        else:
            for vector in vectors:
                index.add(vector)
        return index

    def _attach_expansions(self, frozen: list[FrozenLevel]) -> None:
        """ACORN-1 expands every stored entry, i.e. ``m_beta = 0``.

        Its unpruned 2-hop sets usually exceed the materialization
        bound, in which case level 0 keeps the dynamic lookup.
        """
        if frozen:
            attach_expansion(frozen[0], 0)

    def _neighbor_fn(self, level: int, mask: np.ndarray):
        adjacency = self._adjacency()[level]
        return lambda c: expanded_neighbors(adjacency, c, mask)

    def _quant_level0(self, frozen0, mask: np.ndarray):
        """ACORN-1's 2-hop lookup: the ``m_beta = 0`` expansion CSR.

        When the unpruned 2-hop lists blew the materialization bound,
        the kernel falls back to the dynamic per-node expansion.
        """
        expansion = frozen0._expansions.get(0)
        if expansion is not None:
            return expansion[0], expansion[1], mask, None
        return None, None, None, self._neighbor_fn(0, mask)
