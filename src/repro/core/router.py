"""Cost-based routing between ACORN graph search and pre-filtering.

Paper §5.2: "if the estimated predicate selectivity of a given query is
greater than 1/γ, search the ACORN-γ index, otherwise pre-filter."
Misestimates degrade efficiency, never correctness — a mistaken
pre-filter still returns perfect-recall results; a mistaken graph search
still returns whatever the (sparser) predicate subgraph yields.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.prefilter import PreFilterSearcher
from repro.core.acorn import AcornIndex
from repro.engine.batching import BatchSearchMixin
from repro.hnsw.hnsw import SearchResult
from repro.predicates.base import CompiledPredicate, Predicate
from repro.predicates.selectivity import ExactSelectivityEstimator, SelectivityEstimator


@dataclasses.dataclass
class RoutingDecision:
    """Why a query went where it went (surfaced for tests/diagnostics)."""

    estimated_selectivity: float
    s_min: float
    used_prefilter: bool


@dataclasses.dataclass
class QueryPlan:
    """EXPLAIN-style preview of how a hybrid query would execute.

    Attributes:
        route: ``"pre-filter"`` or ``"acorn-graph"``.
        estimated_selectivity: the router's selectivity estimate.
        s_min: the routing threshold (1/γ by default).
        estimated_distance_computations: predicted cost — the full
            ``s·n`` scan for the pre-filter route, or the §6.3.2
            ``O((d+γ)·log(s·n))``-shaped model for the graph route
            (a coarse planning signal, not a promise).
    """

    route: str
    estimated_selectivity: float
    s_min: float
    estimated_distance_computations: float


class HybridSearcher(BatchSearchMixin):
    """ACORN index + selectivity estimator + pre-filter fall-back.

    This is the complete system a downstream user deploys: build once,
    then serve arbitrary hybrid queries.  Queries estimated below
    ``s_min = 1/γ`` are answered by brute-force pre-filtering (cheap and
    exact at that selectivity); everything else traverses the ACORN
    graph.

    Batches (``search_batch``, via :class:`BatchSearchMixin`) route
    each query independently.  Under a multi-worker batch,
    ``last_decision`` reflects *some* query of the batch — it is a
    single diagnostic slot, not a per-query log; use the engine's
    ``QueryStats`` for per-query telemetry.
    """

    def __init__(
        self,
        index: AcornIndex,
        estimator: SelectivityEstimator | None = None,
        s_min: float | None = None,
    ) -> None:
        self.index = index
        self.estimator = (
            estimator
            if estimator is not None
            else ExactSelectivityEstimator(index.table)
        )
        self.s_min = s_min if s_min is not None else index.params.s_min
        self.prefilter = PreFilterSearcher(
            index.store.vectors, index.table, metric=index.metric
        )
        self.last_decision: RoutingDecision | None = None

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
    ) -> SearchResult:
        """Answer one hybrid query, routing by estimated selectivity."""
        if isinstance(predicate, CompiledPredicate):
            estimate = predicate.selectivity
            source = predicate
        else:
            estimate = self.estimator.estimate(predicate)
            source = predicate
        use_prefilter = estimate < self.s_min
        self.last_decision = RoutingDecision(
            estimated_selectivity=estimate,
            s_min=self.s_min,
            used_prefilter=use_prefilter,
        )
        if use_prefilter:
            if self.index.num_deleted:
                # Tombstones must hold on the pre-filter path too; the
                # composed mask comes from the index's per-predicate
                # cache, so repeated queries share one copy.
                compiled = (
                    source
                    if isinstance(source, CompiledPredicate)
                    else source.compile(self.index.table)
                )
                mask = self.index._effective_mask(compiled.mask)
                source = CompiledPredicate(compiled.predicate, mask)
            return self.prefilter.search(query, source, k)
        return self.index.search(query, source, k, ef_search=ef_search)

    def freeze(self):
        """Freeze the wrapped index's adjacency snapshot (engine hook).

        Lets the batch engine materialize the read-only snapshot once
        before fanning a batch across threads, even when some queries
        route to the pre-filter path.
        """
        return self.index.freeze()

    # ``search_batch`` comes from BatchSearchMixin: each query is
    # routed independently through the batch engine.

    def explain(self, predicate: "Predicate | CompiledPredicate") -> QueryPlan:
        """Preview routing and cost for a predicate without searching.

        The database-style EXPLAIN: useful for understanding why the
        router picked a path and roughly what it will cost.
        """
        import math

        if isinstance(predicate, CompiledPredicate):
            estimate = predicate.selectivity
        else:
            estimate = self.estimator.estimate(predicate)
        n = max(len(self.index), 1)
        if estimate < self.s_min:
            cost = estimate * n
            route = "pre-filter"
        else:
            # §6.3.2's complexity shape, with M distance computations
            # per visited node as the constant.
            params = self.index.params
            subgraph = max(estimate * n, 2.0)
            cost = params.m * (1.0 + math.log(subgraph))
            route = "acorn-graph"
        return QueryPlan(
            route=route,
            estimated_selectivity=float(estimate),
            s_min=self.s_min,
            estimated_distance_computations=float(cost),
        )
