"""Beam-batched bottom-level traversal over quantized codes.

The float32 hot path (:func:`repro.hnsw.traversal.search_layer`) pays
Python heap maintenance per candidate; its distance math is already
vectorized, so swapping in cheaper quantized distances alone barely
moves QPS.  This kernel restructures the bottom-level search the way
the bulk builder's ``_BeamTask`` restructured construction: each round
expands the ``beam`` best unexpanded results *together* — one CSR
multi-row gather, one mask gather, one batched quantized distance
evaluation, one stable merge — so the Python interpreter runs once per
round instead of once per hop.

The search is still best-first: a node is only expanded while it sits
in the current top-``ef`` (the classic stopping rule "terminate when
every kept result is expanded"), and all ranking inside the kernel uses
quantized distances.  Exact float32 ranks are restored afterwards by
:func:`exact_rerank`, which re-scores the top ``rerank_factor * k``
candidates with the index's real :class:`DistanceComputer` — so
reported distances (and the distance-computation counter's meaning) are
identical in kind to the float path.

Determinism: ties break on node id everywhere (``np.lexsort`` on
``(id, dist)``), batch dedup is order-free (``np.unique``), and the
kernel reads only a frozen CSR snapshot — two runs over the same index
return identical results.
"""

from __future__ import annotations

import numpy as np

from repro.hnsw.traversal import TraversalStats

_EMPTY_IDS = np.empty(0, dtype=np.intp)
_EMPTY_DISTS = np.empty(0, dtype=np.float32)

#: Results expanded together per round.  Larger beams amortize Python
#: overhead further but overshoot the best-first frontier more; 8 is
#: the empirical knee at bench scale (n=10k, dim=32).
DEFAULT_BEAM = 8


def quantized_search_layer(
    qcomp,
    seed_ids: np.ndarray,
    seed_dists: np.ndarray,
    ef: int,
    indptr: np.ndarray | None = None,
    indices: np.ndarray | None = None,
    mask: np.ndarray | None = None,
    neighbor_fn=None,
    num_ids: int = 0,
    beam: int = DEFAULT_BEAM,
    stats: TraversalStats | None = None,
    monitor=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Beam ef-search on one level, ranking by quantized distances.

    Args:
        qcomp: a :class:`~repro.vectors.quantized_store.QuantizedComputer`
            with ``set_query`` already called.
        seed_ids / seed_dists: entry points and their quantized
            distances (duplicates tolerated).
        ef: dynamic result-list size.
        indptr / indices: the level's candidate CSR — the raw adjacency
            for HNSW, or a materialized expansion CSR for ACORN's
            compressed lookups.  When None, ``neighbor_fn`` supplies
            per-node candidates instead (the dynamic-expansion
            fallback; still quantized, but gathered per node).
        mask: optional predicate mask applied to gathered candidates
            (the CSR fast path's analogue of the filtered lookups).
        num_ids: global id-space size (for the visited array).
        beam: results expanded together per round.
        stats: optional traversal counters (hops/visited), incremented
            in place.
        monitor: optional walk-budget hook — ``observe(n_passing)`` is
            called once per expanded node, and the walk stops early
            (returning the results found so far) when it returns False.

    Returns:
        ``(ids, dists)`` — up to ``ef`` candidates in ascending
        (quantized distance, id) order.
    """
    if ef <= 0:
        raise ValueError(f"ef must be positive, got {ef}")
    if indptr is None and neighbor_fn is None:
        raise ValueError("need either a candidate CSR or a neighbor_fn")
    if num_ids <= 0:
        num_ids = int(indptr.size - 1) if indptr is not None else 1
    seed_ids = np.asarray(seed_ids, dtype=np.intp)
    seed_dists = np.asarray(seed_dists, dtype=np.float32)
    visited = np.zeros(num_ids, dtype=bool)
    visited[seed_ids] = True

    order = np.lexsort((seed_ids, seed_dists))[:ef]
    res_ids = seed_ids[order]
    res_dists = seed_dists[order]
    res_expanded = np.zeros(res_ids.size, dtype=bool)

    while True:
        frontier_pos = np.flatnonzero(~res_expanded)[:beam]
        if frontier_pos.size == 0:
            break
        res_expanded[frontier_pos] = True
        frontier = res_ids[frontier_pos]
        if stats is not None:
            stats.hops += int(frontier.size)

        if indptr is not None:
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total:
                offsets = np.cumsum(counts) - counts
                flat = np.repeat(starts - offsets, counts)
                flat += np.arange(total)
                gathered = indices[flat]
            else:
                gathered = _EMPTY_IDS
            if monitor is not None:
                segments = np.repeat(
                    np.arange(frontier.size), counts
                )
            if mask is not None and gathered.size:
                keep = mask[gathered]
                gathered = gathered[keep]
                if monitor is not None:
                    segments = segments[keep]
            if monitor is not None:
                per_node = np.bincount(segments, minlength=frontier.size)
                if not all(monitor.observe(int(c)) for c in per_node):
                    break
        else:
            chunks = []
            stop = False
            for node in frontier.tolist():
                cand = neighbor_fn(node)
                if monitor is not None and not monitor.observe(len(cand)):
                    stop = True
                    break
                if len(cand):
                    chunks.append(np.asarray(cand))
            gathered = (np.concatenate(chunks) if chunks else _EMPTY_IDS)
            if stop:
                break

        if gathered.size:
            fresh = gathered[~visited[gathered]]
            fresh = np.unique(fresh)
        else:
            fresh = _EMPTY_IDS
        if fresh.size == 0:
            continue
        visited[fresh] = True
        if stats is not None:
            stats.visited += int(fresh.size)
        fresh_dists = qcomp.distances(fresh)

        cat_ids = np.concatenate([res_ids, fresh])
        cat_dists = np.concatenate([res_dists, fresh_dists])
        cat_expanded = np.concatenate(
            [res_expanded, np.zeros(fresh.size, dtype=bool)]
        )
        keep = np.lexsort((cat_ids, cat_dists))[:ef]
        res_ids = cat_ids[keep]
        res_dists = cat_dists[keep].astype(np.float32, copy=False)
        res_expanded = cat_expanded[keep]

    return res_ids, res_dists


def quantized_search_batch(
    qstore,
    queries: np.ndarray,
    seed_ids: np.ndarray,
    ef: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    eligible: np.ndarray,
    beam: int = DEFAULT_BEAM,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Lockstep beam ef-search for a whole query batch at once.

    The per-query kernel amortizes Python overhead over ``beam`` hops;
    this one amortizes it over the *entire batch* — each round expands
    every active query's beam together: one CSR gather, one eligibility
    gather, one batched quantized distance evaluation
    (:meth:`~repro.vectors.quantized_store.QuantizedStore.batched_distances`
    — the serving analogue of the bulk builder's GEMM-batched Phase A),
    and one segmented merge.  A query whose top-``ef`` is fully
    expanded simply stops contributing work; the loop ends when every
    query has converged.

    Args:
        qstore: the index's :class:`QuantizedStore`.
        queries: float32 ``(nq, dim)`` query matrix.
        seed_ids: one entry node per query (``(nq,)`` ints).
        ef: dynamic result-list size (shared by the batch).
        indptr / indices: the bottom level's candidate CSR.
        eligible: ``(nq, num_ids)`` bool — True where a node passes the
            query's predicate and has not been visited.  Mutated in
            place (pass a copy).
        beam: per-query results expanded per round.

    Returns:
        ``(res_ids, res_dists, hops, visited, quant_evals)`` —
        ``(nq, ef)`` result matrices in ascending (quantized distance,
        id) order per row, padded with id ``-1`` / dist ``inf``, plus
        per-query hop / visited / quantized-evaluation counters.
    """
    if ef <= 0:
        raise ValueError(f"ef must be positive, got {ef}")
    nq = int(queries.shape[0])
    num_ids = int(eligible.shape[1])
    seed_ids = np.asarray(seed_ids, dtype=np.int64)
    rows = np.arange(nq)
    ef_col = np.arange(ef)

    res_ids = np.full((nq, ef), -1, dtype=np.int64)
    res_dists = np.full((nq, ef), np.inf, dtype=np.float32)
    # Padding slots count as expanded so they are never selected as
    # frontier; the loop ends when every row is all-True.
    res_expanded = np.ones((nq, ef), dtype=bool)
    res_ids[:, 0] = seed_ids
    res_dists[:, 0] = qstore.batched_distances(queries, rows, seed_ids)
    res_expanded[:, 0] = False
    eligible[rows, seed_ids] = False

    hops = np.zeros(nq, dtype=np.int64)
    visited = np.ones(nq, dtype=np.int64)
    quant_evals = np.ones(nq, dtype=np.int64)

    while True:
        unexp = ~res_expanded
        if not unexp.any():
            break
        # Rows are distance-sorted, so a stable argsort on the expanded
        # flag lists each row's best unexpanded slots first.
        order = np.argsort(res_expanded, axis=1, kind="stable")[:, :beam]
        valid = np.take_along_axis(unexp, order, axis=1)
        fq, fcol = np.nonzero(valid)
        fpos = order[fq, fcol]
        res_expanded[fq, fpos] = True
        frontier = res_ids[fq, fpos]
        hops += np.bincount(fq, minlength=nq)

        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            continue
        offsets = np.cumsum(counts) - counts
        flat = np.repeat(starts - offsets, counts) + np.arange(total)
        gathered = indices[flat]
        gq = np.repeat(fq, counts)
        keep = eligible[gq, gathered]
        cq = gq[keep]
        cid = gathered[keep]
        if cid.size == 0:
            continue
        # Batch dedup on the (query, node) pair key; np.unique sorts,
        # which also groups candidates by query for the merge below.
        key = np.unique(cq * num_ids + cid)
        cq = key // num_ids
        cid = key % num_ids
        eligible[cq, cid] = False
        fresh = np.bincount(cq, minlength=nq)
        visited += fresh
        quant_evals += fresh
        dists = qstore.batched_distances(queries, cq, cid).astype(
            np.float32, copy=False
        )

        # Segmented merge, restricted to rows that received candidates.
        rows_hit = np.flatnonzero(fresh)
        cat_q = np.concatenate([np.repeat(rows_hit, ef), cq])
        cat_ids = np.concatenate([res_ids[rows_hit].ravel(), cid])
        cat_dists = np.concatenate([res_dists[rows_hit].ravel(), dists])
        cat_exp = np.concatenate(
            [res_expanded[rows_hit].ravel(),
             np.zeros(cid.size, dtype=bool)]
        )
        order2 = np.lexsort((cat_ids, cat_dists, cat_q))
        seg_counts = ef + fresh[rows_hit]
        seg_starts = np.cumsum(seg_counts) - seg_counts
        take = order2[(seg_starts[:, None] + ef_col[None, :]).ravel()]
        res_ids[rows_hit] = cat_ids[take].reshape(-1, ef)
        res_dists[rows_hit] = cat_dists[take].reshape(-1, ef)
        res_expanded[rows_hit] = cat_exp[take].reshape(-1, ef)

    return res_ids, res_dists, hops, visited, quant_evals


def exact_rerank(
    computer,
    query: np.ndarray,
    cand_ids: np.ndarray,
    k: int,
    budget: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Re-score the top quantized candidates with exact float32 distances.

    Args:
        computer: the index's exact :class:`DistanceComputer` (the
            evaluations land in ``distance_computations``, keeping the
            paper's cost measure exact-only).
        query: the float32 query.
        cand_ids: candidates in ascending quantized-distance order.
        k: results wanted.
        budget: how many leading candidates to re-score (from
            :func:`~repro.vectors.quantized_store.rerank_budget`).

    Returns:
        ``(ids, dists, n_reranked)`` — the exact top-k (ties on id) of
        the re-scored head, plus how many candidates were re-scored.
    """
    cand_ids = np.asarray(cand_ids, dtype=np.intp)
    head = cand_ids[: min(cand_ids.size, budget)]
    if head.size == 0:
        return _EMPTY_IDS, _EMPTY_DISTS, 0
    dists = np.asarray(computer.distances_to(query, head), dtype=np.float32)
    order = np.lexsort((head, dists))[:k]
    return head[order], dists[order], int(head.size)
