"""Index maintenance: compacting tombstones into a fresh index.

Tombstones keep deletes cheap but waste space and relay traversal
through dead nodes; past some delete fraction an operator rebuilds.
:func:`rebuild` constructs a fresh index of the same class and
parameters over the live entities only, and returns the id remapping
so callers can translate any ids they stored externally.
"""

from __future__ import annotations

import numpy as np

from repro.attributes.table import AttributeTable, ColumnKind
from repro.core.acorn import AcornIndex


def _subset_table(table: AttributeTable, keep: np.ndarray) -> AttributeTable:
    """A new table holding only the rows in ``keep`` (in order)."""
    out = AttributeTable(int(keep.shape[0]))
    for name in table.column_names:
        kind = table.column_kind(name)
        column = table.column(name)
        if kind is ColumnKind.INT:
            out.add_int_column(name, np.asarray(column)[keep])
        elif kind is ColumnKind.FLOAT:
            out.add_float_column(name, np.asarray(column)[keep])
        elif kind is ColumnKind.STRING:
            out.add_string_column(name, [column[i] for i in keep.tolist()])
        else:
            out.add_keywords_column(
                name, [column.row_keywords(i) for i in keep.tolist()]
            )
    return out


def live_subset(
    index: AcornIndex,
) -> tuple[np.ndarray, np.ndarray, AttributeTable]:
    """The index's live entities in ascending-id order.

    Returns ``(keep, vectors, table)``: the kept old ids, their vectors,
    and a fresh table of their rows — the exact builder input both
    :func:`rebuild` and the online lifecycle compactor
    (:meth:`repro.lifecycle.manager.LifecycleIndex.compact`) feed to
    ``build``, which is what makes the two byte-identical for equal
    seeds.
    """
    n = len(index)
    keep = np.asarray(
        [node for node in range(n) if not index.is_deleted(node)],
        dtype=np.int64,
    )
    return keep, index.store.vectors[keep], _subset_table(index.table, keep)


def rebuild(
    index: AcornIndex,
    seed: int | np.random.Generator | None = 0,
    n_workers: int = 1,
) -> tuple[AcornIndex, np.ndarray]:
    """Compact an index: drop tombstoned entities, rebuild the graph.

    Quantization state survives the rebuild: a quantized source index
    yields a new index with the same :class:`QuantizationConfig`, its
    codes retrained over the live vectors (identical to having built
    the new index with ``quantization=`` directly).

    Args:
        index: any ACORN-family index (γ / 1 / flat).
        seed: level-assignment seed for the new build.
        n_workers: build parallelism; >1 uses the wave-parallel bulk
            builder (run-to-run deterministic, see
            :mod:`repro.core.bulkbuild`).

    Returns:
        (new_index, id_map): the fresh index, plus an int64 array where
        ``id_map[old_id]`` is the entity's new id, or -1 if it was
        deleted.
    """
    n = len(index)
    keep, vectors, table = live_subset(index)
    id_map = np.full(n, -1, dtype=np.int64)
    id_map[keep] = np.arange(keep.shape[0])

    from repro.core.acorn import AcornOneIndex

    if isinstance(index, AcornOneIndex):
        # ACORN-1's constructor derives its fixed params from (m, efc).
        new_index = type(index).build(
            vectors, table, m=index.params.m,
            ef_construction=index.params.ef_construction,
            metric=index.metric, seed=seed,
        )
    else:
        new_index = type(index).build(
            vectors, table, params=index.params, metric=index.metric,
            seed=seed, n_workers=n_workers,
        )
    if index.quantization is not None:
        # enable_quantization retrains the codec over the live vectors —
        # byte-identical to building with quantization= up front, and it
        # works uniformly across the family (flat builds lack the kwarg).
        new_index.enable_quantization(index.quantization)
    return new_index, id_map
