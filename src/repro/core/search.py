"""ACORN's neighbor-lookup strategies (paper §5.1, Figure 4).

ACORN's search is HNSW's search with one substitution: the neighborhood
of each visited node is recovered through a predicate-aware lookup
instead of a raw adjacency read.  Three strategies exist:

- **filter** (Fig 4a): scan the stored list in ascending-distance order
  and keep entries passing the predicate.  Used on uncompressed levels
  of ACORN-γ.
- **compressed** (Fig 4b): the first Mβ entries are filtered directly;
  entries past Mβ are expanded to include their own neighbors (the
  2-hop set the pruning rule guaranteed covers every pruned edge)
  before filtering.  Used on ACORN-γ's compressed level 0.
- **expansion** (Fig 4c): full one-hop + two-hop expansion, then
  filtering.  ACORN-1's strategy — it approximates the M·γ lists that
  were never built.

Deviation from the paper's Algorithm 2 listing: the listing truncates
each recovered neighborhood to its first M entries, and M is described
as the search-time degree bound.  Because stored lists are sorted by
distance, a hard first-M truncation keeps only each node's most local
passing candidates; empirically that traps the greedy traversal inside
nearest-neighbor cliques and collapses recall (level-0 reachability
through first-M-truncated lists covers a small fraction of the graph).
We therefore return *every* passing candidate the strategy discovers.
The expected count is still ≈ M by design — the filtered degree is
s·M·γ, and γ = 1/s_min calibrates it to M at the lowest served
selectivity — so M remains the paper's *expected* per-node bound rather
than a hard one.  See DESIGN.md §3.

Lookups operate on a frozen (numpy-array) adjacency snapshot so the
predicate mask can be applied vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.hnsw.graph import LayeredGraph

FrozenLevel = dict[int, np.ndarray]


def freeze_graph(graph: LayeredGraph) -> list[FrozenLevel]:
    """Snapshot each level's adjacency as read-only int64 arrays.

    Immutability contract: the returned arrays are marked
    non-writeable, so any attempted in-place mutation raises a numpy
    ``ValueError``.  Frozen snapshots are shared by every concurrent
    reader of the batch engine (``repro.engine``); code that needs to
    change the graph must mutate the live :class:`LayeredGraph` and
    re-freeze (``AcornIndex.add`` invalidates the cached snapshot),
    never write through a frozen level.  :func:`assert_frozen` checks
    the contract.
    """
    frozen: list[FrozenLevel] = []
    for level in range(graph.max_level + 1):
        level_adjacency: FrozenLevel = {}
        for node in graph.nodes_at_level(level):
            arr = np.asarray(graph.neighbors(node, level), dtype=np.int64)
            arr.setflags(write=False)
            level_adjacency[node] = arr
        frozen.append(level_adjacency)
    return frozen


def assert_frozen(frozen: list[FrozenLevel]) -> None:
    """Assert every adjacency array in ``frozen`` is non-writeable.

    Raises:
        AssertionError: if any level holds a writeable array — i.e. the
            snapshot was built outside :func:`freeze_graph` or someone
            flipped the write flag back on.
    """
    for level, adjacency in enumerate(frozen):
        for node, arr in adjacency.items():
            assert not arr.flags.writeable, (
                f"frozen adjacency for node {node} at level {level} is "
                "writeable; snapshots shared across search threads must "
                "be immutable"
            )


def filtered_neighbors(
    adjacency: FrozenLevel, node: int, mask: np.ndarray
) -> list[int]:
    """Filter strategy (Fig 4a): passing entries of N(v), in list order."""
    neighbor_ids = adjacency[node]
    if neighbor_ids.size == 0:
        return []
    return neighbor_ids[mask[neighbor_ids]].tolist()


def compressed_neighbors(
    adjacency: FrozenLevel,
    node: int,
    mask: np.ndarray,
    m_beta: int,
) -> list[int]:
    """Compression strategy (Fig 4b): filter first Mβ, expand the rest.

    Phase 1 filters the first ``m_beta`` stored entries directly.
    Phase 2 walks the remaining entries in order; each contributes
    itself plus its one-hop neighborhood (recovering edges the
    predicate-agnostic pruning dropped), filtered by the predicate.
    """
    neighbor_ids = adjacency[node]
    if neighbor_ids.size == 0:
        return []
    head = neighbor_ids[:m_beta]
    out = head[mask[head]].tolist()
    seen = set(out)
    for hop in neighbor_ids[m_beta:].tolist():
        if mask[hop] and hop not in seen:
            seen.add(hop)
            out.append(hop)
        two_hop = adjacency[hop]
        if two_hop.size == 0:
            continue
        passing = two_hop[mask[two_hop]]
        for cand in passing.tolist():
            if cand not in seen:
                seen.add(cand)
                out.append(cand)
    return out


def expanded_neighbors(
    adjacency: FrozenLevel, node: int, mask: np.ndarray
) -> list[int]:
    """ACORN-1's expansion strategy (Fig 4c): 1-hop + 2-hop, filtered.

    Equivalent to the compression strategy with ``m_beta = 0``: every
    stored neighbor is expanded, approximating the M·γ candidate lists
    ACORN-γ would have stored.
    """
    return compressed_neighbors(adjacency, node, mask, m_beta=0)


def truncated_neighbors(adjacency: FrozenLevel, node: int, m: int) -> list[int]:
    """Metadata-agnostic construction lookup (§5.2): first M entries.

    During ACORN-γ construction the traversal ignores predicates and
    reads only the first M entries of each (possibly M·γ-long) list —
    M edges suffice for navigability, so scanning more would only add
    distance computations and TTI.
    """
    return adjacency[node][:m].tolist()
