"""ACORN's neighbor-lookup strategies (paper §5.1, Figure 4).

ACORN's search is HNSW's search with one substitution: the neighborhood
of each visited node is recovered through a predicate-aware lookup
instead of a raw adjacency read.  Three strategies exist:

- **filter** (Fig 4a): scan the stored list in ascending-distance order
  and keep entries passing the predicate.  Used on uncompressed levels
  of ACORN-γ.
- **compressed** (Fig 4b): the first Mβ entries are filtered directly;
  entries past Mβ are expanded to include their own neighbors (the
  2-hop set the pruning rule guaranteed covers every pruned edge)
  before filtering.  Used on ACORN-γ's compressed level 0.
- **expansion** (Fig 4c): full one-hop + two-hop expansion, then
  filtering.  ACORN-1's strategy — it approximates the M·γ lists that
  were never built.

Deviation from the paper's Algorithm 2 listing: the listing truncates
each recovered neighborhood to its first M entries, and M is described
as the search-time degree bound.  Because stored lists are sorted by
distance, a hard first-M truncation keeps only each node's most local
passing candidates; empirically that traps the greedy traversal inside
nearest-neighbor cliques and collapses recall (level-0 reachability
through first-M-truncated lists covers a small fraction of the graph).
We therefore return *every* passing candidate the strategy discovers.
The expected count is still ≈ M by design — the filtered degree is
s·M·γ, and γ = 1/s_min calibrates it to M at the lowest served
selectivity — so M remains the paper's *expected* per-node bound rather
than a hard one.  See DESIGN.md §3.

Lookups operate on a frozen CSR adjacency snapshot (one
:class:`FrozenLevel` per level) so every strategy is a handful of numpy
slice/gather operations: the predicate mask is applied as
``mask[indices[start:stop]]`` and 2-hop expansion is an ``indptr``
gather + ``np.concatenate`` + stable dedup, with no per-neighbor Python
iteration.  The previous dict-of-arrays kernel survives in
:mod:`repro.core.dictsearch` as the equivalence/benchmark reference.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.hnsw.graph import LayeredGraph

_INDEX_DTYPE = np.int32

_EMPTY = np.empty(0, dtype=_INDEX_DTYPE)
_EMPTY.setflags(write=False)


class FrozenLevel:
    """CSR-flattened, read-only adjacency of one graph level.

    Neighbor lists of every node on the level are concatenated into one
    contiguous ``indices`` array; ``indptr`` (length ``num_ids + 1``,
    indexed by *global* node id) delimits each node's slice.  Nodes
    absent from the level simply own an empty slice, so lookups never
    branch on membership — the traversal only ever asks for nodes the
    level contains.

    Attributes:
        indptr: int32 array of slice offsets, shape ``(num_ids + 1,)``.
        indices: int32 array of concatenated neighbor ids, shape
            ``(num_edges,)``, each list in its stored
            (ascending-distance) order.
        node_ids: int32 array of the node ids present on this level,
            ascending.

    A level may additionally carry *materialized expansion lists* (see
    :func:`attach_expansion`): a second CSR pair per ``m_beta`` holding
    each node's deduplicated 2-hop candidate sequence, which turns the
    compression/expansion lookups into a single slice + mask gather.
    """

    __slots__ = ("indptr", "indices", "node_ids", "_expansions")

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, node_ids: np.ndarray
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.node_ids = node_ids
        self._expansions: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        """Number of nodes present on the level."""
        return int(self.node_ids.size)

    def __contains__(self, node: int) -> bool:
        pos = int(np.searchsorted(self.node_ids, node))
        return pos < self.node_ids.size and int(self.node_ids[pos]) == node

    def __getitem__(self, node: int) -> np.ndarray:
        """The (read-only) neighbor array of ``node``, stored order."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    @property
    def num_ids(self) -> int:
        """Size of the global id space the level is indexed by."""
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Total directed edges stored on the level."""
        return int(self.indices.size)


def freeze_graph(graph: LayeredGraph) -> list[FrozenLevel]:
    """Snapshot each level's adjacency as a read-only CSR layout.

    Immutability contract: the returned arrays are marked
    non-writeable, so any attempted in-place mutation raises a numpy
    ``ValueError``.  Frozen snapshots are shared by every concurrent
    reader of the batch engine (``repro.engine``); code that needs to
    change the graph must mutate the live :class:`LayeredGraph` and
    re-freeze (``AcornIndex.add`` invalidates the cached snapshot),
    never write through a frozen level.  :func:`assert_frozen` checks
    the contract.
    """
    num_ids = len(graph)
    frozen: list[FrozenLevel] = []
    for level in range(graph.max_level + 1):
        node_ids = graph.nodes_at_level(level)
        counts = np.zeros(num_ids, dtype=np.int64)
        flat: list[int] = []
        for node in node_ids:
            neighbor_ids = graph.neighbors(node, level)
            counts[node] = len(neighbor_ids)
            flat.extend(neighbor_ids)
        if len(flat) >= np.iinfo(_INDEX_DTYPE).max:
            raise OverflowError(
                f"level {level} holds {len(flat)} edges, beyond the int32 "
                "CSR layout"
            )
        indptr = np.zeros(num_ids + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indptr = indptr.astype(_INDEX_DTYPE)
        indices = np.asarray(flat, dtype=_INDEX_DTYPE)
        ids = np.asarray(sorted(node_ids), dtype=_INDEX_DTYPE)
        for arr in (indptr, indices, ids):
            arr.setflags(write=False)
        frozen.append(FrozenLevel(indptr, indices, ids))
    return frozen


def assert_frozen(frozen: list[FrozenLevel]) -> None:
    """Assert every CSR array in ``frozen`` is non-writeable.

    Raises:
        AssertionError: if any level holds a writeable array — i.e. the
            snapshot was built outside :func:`freeze_graph` or someone
            flipped the write flag back on.
    """
    for level, csr in enumerate(frozen):
        assert isinstance(csr, FrozenLevel), (
            f"level {level} of the snapshot is {type(csr).__name__}, "
            "expected FrozenLevel"
        )
        for name in ("indptr", "indices", "node_ids"):
            arr = getattr(csr, name)
            assert not arr.flags.writeable, (
                f"frozen {name} at level {level} is writeable; snapshots "
                "shared across search threads must be immutable"
            )
        for m_beta, (exp_indptr, exp_indices) in csr._expansions.items():
            for arr in (exp_indptr, exp_indices):
                assert not arr.flags.writeable, (
                    f"expansion (m_beta={m_beta}) at level {level} is "
                    "writeable; snapshots shared across search threads "
                    "must be immutable"
                )


_DEDUP_LOCAL = threading.local()


def _dedup_table(num_ids: int) -> np.ndarray:
    """The calling thread's position table for :func:`_stable_unique`."""
    table = getattr(_DEDUP_LOCAL, "table", None)
    if table is None or table.size < num_ids:
        table = np.empty(max(num_ids, 1024), dtype=np.intp)
        _DEDUP_LOCAL.table = table
    return table


def _stable_unique(ids: np.ndarray, num_ids: int) -> np.ndarray:
    """Drop duplicate ids, keeping each first occurrence in order.

    Sort-free: scatters each id's position into a reusable per-thread
    table — reversed, so for duplicated ids the *first* occurrence's
    write wins — then keeps entries whose gathered position equals
    their own.  Stale table contents from earlier calls are harmless
    because only entries written by this call are read back.
    """
    if ids.size <= 1:
        return ids
    table = _dedup_table(num_ids)
    positions = np.arange(ids.size, dtype=np.intp)
    table[ids[::-1]] = positions[::-1]
    keep = table[ids] == positions
    if keep.all():
        return ids
    return ids[keep]


def filtered_neighbors(
    adjacency: FrozenLevel, node: int, mask: np.ndarray
) -> np.ndarray:
    """Filter strategy (Fig 4a): passing entries of N(v), in list order."""
    neighbor_ids = adjacency[node]
    if neighbor_ids.size == 0:
        return neighbor_ids
    return neighbor_ids[mask[neighbor_ids]]


def _expansion_candidates(
    indptr: np.ndarray, indices: np.ndarray, node: int, m_beta: int
) -> tuple[np.ndarray, bool]:
    """The interleaved (pre-mask, pre-dedup) expansion sequence of a node.

    Returns ``(candidates, expanded)``: the sequence head, tail[0],
    N(tail[0]), tail[1], N(tail[1]), ... assembled by scatter/gather
    rather than a per-hop Python loop.  ``expanded`` is False when the
    stored list fits within ``m_beta`` (no tail) — the sequence is then
    the raw head and callers must skip dedup to mirror the sequential
    reference, which never dedups a pure head.
    """
    start = int(indptr[node])
    stop = int(indptr[node + 1])
    if stop == start:
        return _EMPTY, False
    split = min(start + m_beta, stop)
    head = indices[start:split]
    tail = indices[split:stop]
    if tail.size == 0:
        return head, False
    hop_starts = indptr[tail]
    counts = indptr[tail + 1] - hop_starts
    total_edges = int(counts.sum())
    candidates = np.empty(head.size + tail.size + total_edges,
                          dtype=indices.dtype)
    candidates[: head.size] = head
    edge_offsets = np.cumsum(counts) - counts
    tail_pos = head.size + edge_offsets + np.arange(tail.size)
    candidates[tail_pos] = tail
    if total_edges:
        edge_pos = np.ones(tail.size + total_edges, dtype=bool)
        edge_pos[tail_pos - head.size] = False
        flat = np.repeat(hop_starts - edge_offsets, counts)
        flat += np.arange(total_edges)
        candidates[head.size :][edge_pos] = indices[flat]
    return candidates, True


def attach_expansion(
    level: FrozenLevel, m_beta: int, max_ratio: float = 16.0
) -> bool:
    """Materialize per-node expansion lists on a frozen level.

    The compression/expansion lookup's candidate sequence — and its
    stable dedup — depend only on the graph, never on the query
    predicate: a mask either passes every occurrence of a value or
    none, so filtering commutes with first-occurrence dedup.  Both can
    therefore be computed once per snapshot, turning each query-time
    lookup into one CSR slice plus one mask gather while returning
    byte-identical candidate sequences.

    This spends memory to buy traversal speed, so it is bounded: if the
    materialized lists would exceed ``max_ratio`` times the level's
    stored edges (as happens for ACORN-1's unpruned 2-hop sets), the
    build aborts and lookups fall back to the dynamic per-hop path.

    Returns:
        True if the expansion was attached (or already present), False
        if the size bound was hit and the level is left unchanged.
    """
    if m_beta in level._expansions:
        return True
    indptr = level.indptr
    indices = level.indices
    num_ids = level.num_ids
    budget = int(max_ratio * max(indices.size, 1))
    counts_out = np.zeros(num_ids, dtype=np.int64)
    chunks: list[np.ndarray] = []
    total = 0
    for node in level.node_ids.tolist():
        cand, expanded = _expansion_candidates(indptr, indices, node, m_beta)
        if expanded:
            cand = _stable_unique(cand, num_ids)
        total += cand.size
        if total > budget:
            return False
        counts_out[node] = cand.size
        chunks.append(cand)
    if total >= np.iinfo(_INDEX_DTYPE).max:
        return False
    exp_indptr = np.zeros(num_ids + 1, dtype=np.int64)
    np.cumsum(counts_out, out=exp_indptr[1:])
    exp_indptr = exp_indptr.astype(_INDEX_DTYPE)
    exp_indices = (
        np.concatenate(chunks).astype(_INDEX_DTYPE, copy=False)
        if chunks else np.empty(0, dtype=_INDEX_DTYPE)
    )
    exp_indptr.setflags(write=False)
    exp_indices.setflags(write=False)
    level._expansions[m_beta] = (exp_indptr, exp_indices)
    return True


def compressed_neighbors(
    adjacency: FrozenLevel,
    node: int,
    mask: np.ndarray,
    m_beta: int,
) -> np.ndarray:
    """Compression strategy (Fig 4b): filter first Mβ, expand the rest.

    Phase 1 filters the first ``m_beta`` stored entries directly.
    Phase 2 expands the remaining entries in order; each contributes
    itself plus its one-hop neighborhood (recovering edges the
    predicate-agnostic pruning dropped).  One mask gather filters the
    interleaved candidates; a stable dedup keeps first occurrences, so
    the output order matches the sequential reference exactly.

    When the level carries a materialized expansion for this ``m_beta``
    (:func:`attach_expansion`), the whole lookup collapses to a slice
    of the precomputed deduplicated sequence plus the mask gather.
    """
    expansion = adjacency._expansions.get(m_beta)
    if expansion is not None:
        exp_indptr, exp_indices = expansion
        cand = exp_indices[exp_indptr[node] : exp_indptr[node + 1]]
        return cand[mask[cand]]
    candidates, expanded = _expansion_candidates(
        adjacency.indptr, adjacency.indices, node, m_beta
    )
    passing = candidates[mask[candidates]]
    if not expanded:
        return passing
    return _stable_unique(passing, adjacency.num_ids)


def expanded_neighbors(
    adjacency: FrozenLevel, node: int, mask: np.ndarray
) -> np.ndarray:
    """ACORN-1's expansion strategy (Fig 4c): 1-hop + 2-hop, filtered.

    Equivalent to the compression strategy with ``m_beta = 0``: every
    stored neighbor is expanded, approximating the M·γ candidate lists
    ACORN-γ would have stored.
    """
    return compressed_neighbors(adjacency, node, mask, m_beta=0)


def truncated_neighbors(
    adjacency: FrozenLevel, node: int, m: int
) -> np.ndarray:
    """Metadata-agnostic construction lookup (§5.2): first M entries.

    During ACORN-γ construction the traversal ignores predicates and
    reads only the first M entries of each (possibly M·γ-long) list —
    M edges suffice for navigability, so scanning more would only add
    distance computations and TTI.
    """
    start = adjacency.indptr[node]
    return adjacency.indices[start : min(start + m, adjacency.indptr[node + 1])]
