"""Uniform ``search_batch`` mixin for every searcher in the library.

Indexes and baselines inherit :class:`BatchSearchMixin` so they all
expose the same batched entry point, routed through the
:class:`~repro.engine.engine.SearchEngine`.  The default return value
stays ``list[SearchResult]`` for compatibility with the pre-engine
batch API; pass ``with_stats=True`` for the full instrumented
:class:`~repro.engine.engine.BatchResult`.
"""

from __future__ import annotations


class BatchSearchMixin:
    """Adds an engine-backed ``search_batch`` to a ``search``-able class.

    Host classes must expose ``search(query, predicate, k,
    ef_search=...) -> SearchResult`` and (for raw-predicate input) an
    attribute table reachable as ``self.table`` or ``self.index.table``.
    """

    def search_batch(
        self,
        queries,
        predicates,
        k: int,
        ef_search: int = 64,
        num_workers: int | None = None,
        with_stats: bool = False,
        executor: str = "thread",
    ):
        """Answer many hybrid queries through the batch engine.

        Args:
            queries: (q, dim) query matrix (or a single vector).
            predicates: one predicate per query, or a single predicate
                shared by all queries (its mask is materialized once).
            k: neighbors per query.
            ef_search: search-effort knob forwarded to each search.
            num_workers: worker threads; ``None`` or 1 executes the
                batch sequentially on the calling thread.  Results are
                identical either way — threads only change wall-time.
            with_stats: when True, return the engine's
                :class:`~repro.engine.engine.BatchResult` (per-query
                :class:`~repro.engine.instrumentation.QueryStats`,
                latency percentiles) instead of the bare result list.
            executor: fan-out mechanism forwarded to the engine
                (``"thread"``/``"process"``/``"sync"``).  Note the
                throwaway engine here rebuilds the shared-memory arena
                every call — long-lived process dispatch should hold a
                :class:`~repro.engine.engine.SearchEngine` instead.

        Returns:
            ``list[SearchResult]`` in query order, or a ``BatchResult``
            when ``with_stats`` is set.
        """
        from repro.engine.engine import QueryBatch, SearchEngine

        batch = QueryBatch.build(queries, predicates, k=k, ef_search=ef_search)
        with SearchEngine(
            self, num_workers=num_workers, executor=executor
        ) as engine:
            result = engine.search_batch(batch)
        return result if with_stats else result.results
