"""LRU cache for compiled-predicate bitmasks.

Real hybrid-search workloads repeat predicates heavily (the same
category filter arrives thousands of times an hour), yet compiling a
predicate materializes an O(n) boolean mask over the whole table —
for string/regex predicates that is a full Python-level column scan.
The batch engine therefore caches compiled masks keyed by a stable
*predicate fingerprint*; a hit skips mask materialization entirely.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict

from repro.attributes.table import AttributeTable
from repro.predicates.base import CompiledPredicate, Predicate


@dataclasses.dataclass(frozen=True)
class CacheInfo:
    """A point-in-time snapshot of cache effectiveness counters.

    Attributes:
        hits: lookups answered from the cache.
        misses: lookups that had to compile a mask.
        size: entries currently cached.
        capacity: maximum entries before LRU eviction.
    """

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class PredicateCache:
    """Thread-safe LRU cache of :class:`CompiledPredicate` masks.

    Keys are :meth:`Predicate.fingerprint` strings, so two structurally
    identical predicate objects share one cached mask.  Entries are
    validated by the *identity* of the table they were compiled against
    (``compiled.table is table``): a lookup against any other table
    object — the table grew, or a lifecycle compaction swapped in a new
    base of the same size — is a miss that recompiles and replaces the
    entry.  Length comparison is not enough: delete+reinsert churn
    routinely produces a new base with the old base's length but
    different rows, and a stale mask applied to it silently filters the
    wrong entities.

    Args:
        capacity: maximum cached masks; least-recently-used entries are
            evicted beyond it.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CompiledPredicate]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compile(
        self, predicate: Predicate, table: AttributeTable
    ) -> tuple[CompiledPredicate, bool]:
        """Return ``(compiled, was_hit)`` for ``predicate`` over ``table``.

        Mask materialization happens outside the lock, so a slow compile
        never blocks concurrent lookups of other predicates.
        """
        key = predicate.fingerprint()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None and cached.table is table:
                self._entries.move_to_end(key)
                self._hits += 1
                return cached, True
            self._misses += 1
        compiled = predicate.compile(table)
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return compiled, False

    def clear(self) -> None:
        """Drop every cached mask (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def info(self) -> CacheInfo:
        """Current hit/miss/size counters as a :class:`CacheInfo`."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                capacity=self.capacity,
            )
