"""Concurrent batched query execution over frozen index snapshots.

The serving-side counterpart of the index structures: a
:class:`SearchEngine` takes a :class:`QueryBatch` of (vector, predicate)
queries, compiles predicates once through an LRU bitmask cache, freezes
the underlying index's adjacency snapshot, and fans the queries across a
``ThreadPoolExecutor``.  Results come back in submission order — byte
identical to a sequential loop — with one
:class:`~repro.engine.instrumentation.QueryStats` record per query and
batch-level p50/p95/p99 summaries.

Any searcher exposing ``search(query, predicate, k, ef_search=...) ->
SearchResult`` works: the ACORN indices, the router, and every baseline.
Thread safety rests on two invariants established elsewhere:

- adjacency snapshots are frozen read-only arrays
  (:func:`repro.core.search.freeze_graph`'s immutability contract);
- distance counting is lock-protected
  (:class:`repro.vectors.distance.DistanceComputer`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.engine.cache import CacheInfo, PredicateCache
from repro.engine.instrumentation import QueryStats
from repro.hnsw.hnsw import SearchResult
from repro.predicates.base import CompiledPredicate, Predicate


def _result_stats(
    index: int, result: SearchResult, elapsed: float, cache_hit: bool
) -> QueryStats:
    """One query's QueryStats from its SearchResult (shared by every
    executor path, so counters are identical across them)."""
    return QueryStats(
        query_index=index,
        distance_computations=int(result.distance_computations),
        hops=int(getattr(result, "hops", 0)),
        visited_nodes=int(getattr(result, "visited_nodes", 0)),
        predicate_cache_hit=cache_hit,
        wall_time_s=elapsed,
        shards_probed=int(getattr(result, "shards_probed", 0)),
        shards_pruned=int(getattr(result, "shards_pruned", 0)),
        shards_failed=int(getattr(result, "shards_failed", 0)),
        shards_timed_out=int(getattr(result, "shards_timed_out", 0)),
        degraded=bool(getattr(result, "degraded", False)),
        recall_ceiling=float(getattr(result, "recall_ceiling", 1.0)),
        route_chosen=str(getattr(result, "route_chosen", "")),
        route_reason=str(getattr(result, "route_reason", "")),
        fallback_triggered=bool(getattr(result, "fallback_triggered", False)),
        estimator_error=float(getattr(result, "estimator_error", 0.0)),
        quantized_distances=int(getattr(result, "quantized_distances", 0)),
        rerank_distances=int(getattr(result, "rerank_distances", 0)),
        rerank_factor=float(getattr(result, "rerank_factor", 0.0)),
        epoch=int(getattr(result, "epoch", 0)),
    )


def resolve_table(searcher):
    """Find the attribute table a searcher compiles predicates against.

    Checks ``searcher.table`` first, then ``searcher.index.table`` (the
    router's shape).  Returns None when the searcher carries no table —
    such engines only accept pre-compiled predicates.
    """
    table = getattr(searcher, "table", None)
    if table is not None:
        return table
    return getattr(getattr(searcher, "index", None), "table", None)


@dataclasses.dataclass
class QueryBatch:
    """An ordered batch of hybrid queries sharing one K and ef_search.

    Attributes:
        queries: (q, dim) float32 query matrix.
        predicates: one predicate (raw or compiled) per query row.
        k: neighbors requested per query.
        ef_search: search-effort knob forwarded to the searcher.
    """

    queries: np.ndarray
    predicates: list
    k: int
    ef_search: int = 64

    @classmethod
    def build(cls, queries, predicates, k: int, ef_search: int = 64) -> "QueryBatch":
        """Normalize raw inputs into a validated batch.

        Args:
            queries: (q, dim) matrix, a single vector, or an empty
                sequence (the empty batch).
            predicates: one predicate per query, or a single predicate
                broadcast to every query (the engine's cache then
                materializes its mask exactly once).
            k: neighbors per query (must be positive).
            ef_search: search-effort knob.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = np.asarray(queries, dtype=np.float32)
        if queries.size == 0:
            queries = queries.reshape(0, queries.shape[-1] if queries.ndim >= 2 else 0)
        else:
            queries = np.atleast_2d(queries)
        if isinstance(predicates, (Predicate, CompiledPredicate)):
            predicates = [predicates] * queries.shape[0]
        else:
            predicates = list(predicates)
            if len(predicates) != queries.shape[0]:
                raise ValueError(
                    f"QueryBatch.build got {queries.shape[0]} queries but "
                    f"{len(predicates)} predicates; pass exactly one "
                    "predicate per query, or a single Predicate/"
                    "CompiledPredicate to broadcast across the batch"
                )
        return cls(
            queries=queries,
            predicates=predicates,
            k=int(k),
            ef_search=int(ef_search),
        )

    def __len__(self) -> int:
        return int(self.queries.shape[0])


@dataclasses.dataclass
class BatchResult:
    """Everything one batch execution produced, in submission order.

    Attributes:
        results: one :class:`SearchResult` per query, ordered by query
            index regardless of thread completion order.
        stats: one :class:`QueryStats` per query, same order.
        wall_time_s: wall-clock seconds for the whole batch (compile +
            fan-out + gather).
        num_workers: worker threads the batch actually used.
    """

    results: list[SearchResult]
    stats: list[QueryStats]
    wall_time_s: float
    num_workers: int

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> SearchResult:
        return self.results[index]

    @property
    def total_distance_computations(self) -> int:
        """Sum of per-query distance computations across the batch."""
        return sum(s.distance_computations for s in self.stats)

    @property
    def cache_hits(self) -> int:
        """Queries whose predicate mask was served from cache."""
        return sum(1 for s in self.stats if s.predicate_cache_hit)

    @property
    def total_shards_probed(self) -> int:
        """Sum of per-query probed-shard counts (0 for unsharded)."""
        return sum(s.shards_probed for s in self.stats)

    @property
    def total_shards_pruned(self) -> int:
        """Sum of per-query router-pruned-shard counts (0 for unsharded)."""
        return sum(s.shards_pruned for s in self.stats)

    @property
    def total_shards_failed(self) -> int:
        """Sum of per-query failed-shard counts (0 without resilience)."""
        return sum(s.shards_failed for s in self.stats)

    @property
    def total_shards_timed_out(self) -> int:
        """Sum of per-query timed-out-shard counts (0 without resilience)."""
        return sum(s.shards_timed_out for s in self.stats)

    @property
    def degraded_queries(self) -> int:
        """Queries that returned a partial (survivors-only) top-k."""
        return sum(1 for s in self.stats if s.degraded)

    @property
    def min_recall_ceiling(self) -> float:
        """Worst per-query estimated recall ceiling in the batch (1.0
        for an empty or undegraded batch)."""
        return min((s.recall_ceiling for s in self.stats), default=1.0)

    @property
    def route_counts(self) -> dict[str, int]:
        """Queries per chosen route, sorted by route name (empty for
        searchers without a route planner)."""
        counts: dict[str, int] = {}
        for s in self.stats:
            if s.route_chosen:
                counts[s.route_chosen] = counts.get(s.route_chosen, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def fallbacks_triggered(self) -> int:
        """Queries whose graph walk was abandoned for the pre-filter
        fallback."""
        return sum(1 for s in self.stats if s.fallback_triggered)

    @property
    def mean_abs_estimator_error(self) -> float:
        """Mean absolute selectivity-estimation error across the batch
        (0.0 for an empty or unrouted batch)."""
        if not self.stats:
            return 0.0
        return sum(abs(s.estimator_error) for s in self.stats) / len(self.stats)

    @property
    def total_quantized_distances(self) -> int:
        """Sum of per-query quantized-code distance evaluations
        (0 for unquantized searchers)."""
        return sum(s.quantized_distances for s in self.stats)

    @property
    def total_rerank_distances(self) -> int:
        """Sum of per-query exact rerank evaluations over quantized
        candidates (0 for unquantized searchers)."""
        return sum(s.rerank_distances for s in self.stats)

    @property
    def mean_queue_wait_ms(self) -> float:
        """Mean serving-layer coalescing wait across the batch (0.0 for
        direct engine calls or an empty batch)."""
        if not self.stats:
            return 0.0
        return sum(s.queue_wait_ms for s in self.stats) / len(self.stats)

    @property
    def mean_batch_size_served(self) -> float:
        """Mean coalesced-batch size the queries rode in (0.0 for
        direct engine calls or an empty batch)."""
        if not self.stats:
            return 0.0
        return sum(s.batch_size_served for s in self.stats) / len(self.stats)

    @property
    def tenant_counts(self) -> dict[str, int]:
        """Queries per tenant, sorted by tenant id (empty for direct
        engine calls — only the serving layer stamps tenants)."""
        counts: dict[str, int] = {}
        for s in self.stats:
            if s.tenant_id:
                counts[s.tenant_id] = counts.get(s.tenant_id, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def max_epoch(self) -> int:
        """Newest lifecycle epoch observed in the batch (0 for
        searchers without a streaming lifecycle)."""
        return max((s.epoch for s in self.stats), default=0)

    @property
    def cache_misses(self) -> int:
        """Queries whose predicate mask had to be materialized."""
        return len(self.stats) - self.cache_hits

    @property
    def qps(self) -> float:
        """Batch throughput in queries per second."""
        if self.wall_time_s <= 0:
            return float("inf")
        return len(self.results) / self.wall_time_s

    def summary(self) -> dict:
        """Batch-level aggregation of the per-query instrumentation.

        Returns a JSON-serializable dict with latency and
        distance-computation percentiles (p50/p95/p99 via
        :func:`repro.eval.stats.percentile_summary`), throughput, and
        cache effectiveness.
        """
        from repro.eval.stats import percentile_summary

        latency = percentile_summary(s.wall_time_s for s in self.stats)
        ncomp = percentile_summary(
            s.distance_computations for s in self.stats
        )
        return {
            "queries": len(self.results),
            "num_workers": self.num_workers,
            "wall_time_s": self.wall_time_s,
            "qps": self.qps,
            "latency_s": dataclasses.asdict(latency),
            "distance_computations": dataclasses.asdict(ncomp),
            "total_distance_computations": self.total_distance_computations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shards_probed": self.total_shards_probed,
            "shards_pruned": self.total_shards_pruned,
            "shards_failed": self.total_shards_failed,
            "shards_timed_out": self.total_shards_timed_out,
            "degraded_queries": self.degraded_queries,
            "min_recall_ceiling": self.min_recall_ceiling,
            "route_counts": self.route_counts,
            "fallbacks_triggered": self.fallbacks_triggered,
            "mean_abs_estimator_error": self.mean_abs_estimator_error,
            "total_quantized_distances": self.total_quantized_distances,
            "total_rerank_distances": self.total_rerank_distances,
            "mean_queue_wait_ms": self.mean_queue_wait_ms,
            "mean_batch_size_served": self.mean_batch_size_served,
            "tenant_counts": self.tenant_counts,
            "max_epoch": self.max_epoch,
        }


class SearchEngine:
    """Batched, concurrent query execution over one searcher.

    The engine owns a worker pool and a predicate cache; one engine per
    served index is the intended deployment shape.  Execution is
    deterministic: for a fixed searcher and batch, results are byte
    identical for any ``num_workers`` (queries never share mutable
    state — the adjacency snapshot is frozen, each search binds its own
    distance computer, and compiled masks are read-only inputs).

    Args:
        searcher: any object exposing ``search(query, predicate, k,
            ef_search=...) -> SearchResult``.
        num_workers: worker threads for batch fan-out; ``None`` or 1
            runs queries inline on the calling thread.
        cache_size: LRU capacity of the compiled-predicate cache.
        table: attribute table for predicate compilation; defaults to
            the searcher's own table (``searcher.table`` or
            ``searcher.index.table``).
        executor: batch fan-out mechanism.  ``"thread"`` (default)
            keeps the historical ``ThreadPoolExecutor`` path;
            ``"sync"`` forces the inline sequential loop regardless of
            ``num_workers``; ``"process"`` fans chunks across a
            persistent spawned worker pool reading the index through a
            zero-copy shared-memory arena (``docs/parallelism.md``).
            All three produce byte-identical results — the process path
            falls back to threads when shared memory is unavailable or
            the searcher cannot be snapshotted (``process_fallbacks`` /
            ``last_fallback_reason`` record every such downgrade).
        process_pool: a shared
            :class:`~repro.parallel.pool.ProcessPool` to dispatch on;
            ``None`` lazily creates a pool owned (and closed) by this
            engine.
    """

    def __init__(
        self,
        searcher,
        num_workers: int | None = None,
        cache_size: int = 64,
        table=None,
        executor: str = "thread",
        process_pool=None,
    ) -> None:
        from repro.parallel import resolve_executor

        self.searcher = searcher
        self.num_workers = 1 if num_workers is None else max(int(num_workers), 1)
        self._table_override = table
        self.cache = PredicateCache(cache_size)
        self._pool: ThreadPoolExecutor | None = None
        self.executor = resolve_executor(executor)
        self._proc_pool = process_pool
        self._own_proc_pool = process_pool is None
        self._arena_manager = None
        self._closed = False
        #: process→thread downgrades this engine performed, and why the
        #: latest one happened (telemetry; tests pin clean fallback).
        self.process_fallbacks = 0
        self.last_fallback_reason = ""
        #: chunks re-dispatched after a worker crash, and chunks that
        #: ultimately ran inline because the respawned worker crashed
        #: again (the never-fail ladder: process → retry → inline).
        self.chunk_retries = 0
        self.chunk_inline_fallbacks = 0

    @property
    def table(self):
        """The table predicates currently compile against.

        Re-resolved from the searcher on every read (unless an explicit
        ``table=`` was given) because lifecycle searchers swap their
        base table on compaction — a table pinned at construction would
        go stale and compile masks against rows the published epoch no
        longer serves.
        """
        if self._table_override is not None:
            return self._table_override
        return resolve_table(self.searcher)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pools and shared-memory arenas down.

        Idempotent and interpreter-teardown safe: a second ``close``
        (including the implicit one from ``__del__`` after an explicit
        close, or a ``__del__`` racing a failed ``__init__``) is a
        no-op rather than an error.  After an explicit close,
        :meth:`search_batch` raises ``RuntimeError`` — a closed engine
        has unlinked its shared-memory segments and must not silently
        re-create them.
        """
        self._closed = True
        pool = getattr(self, "_pool", None)
        if pool is not None:
            self._pool = None
            pool.shutdown(wait=True)
        proc_pool = getattr(self, "_proc_pool", None)
        if proc_pool is not None and getattr(self, "_own_proc_pool", False):
            self._proc_pool = None
            proc_pool.close()
        manager = getattr(self, "_arena_manager", None)
        if manager is not None:
            self._arena_manager = None
            manager.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def __enter__(self) -> "SearchEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="repro-engine",
            )
        return self._pool

    # ------------------------------------------------------------------
    # Process executor plumbing
    # ------------------------------------------------------------------

    def _process_pool(self):
        """The engine's process pool (lazily created when owned)."""
        if self._proc_pool is None:
            from repro.parallel import ProcessPool

            self._proc_pool = ProcessPool(self.num_workers)
            self._own_proc_pool = True
        return self._proc_pool

    def _ensure_arena(self, searcher, token: str):
        """The live arena record for ``token``, publishing on change.

        Publishing retires the previous epoch's arena (unlinked once
        its refcount drains) and broadcasts an unpin so warm workers
        drop their stale mappings instead of accumulating them.
        """
        from repro.parallel import ArenaManager, build_snapshot, snapshot_refs

        if self._arena_manager is None:
            self._arena_manager = ArenaManager()
        manager = self._arena_manager
        record = manager.current
        if record is not None and record.token == token:
            return record
        old_token = record.token if record is not None else None
        spec, arrays = build_snapshot(searcher)
        record = manager.publish(
            token, arrays, spec, refs=snapshot_refs(searcher)
        )
        if old_token is not None and self._proc_pool is not None \
                and not self._proc_pool.closed:
            self._proc_pool.unpin_all(old_token)
        return record

    def _process_pairs(self, searcher, batch, compiled, hit_flags, run_one):
        """Fan contiguous query chunks across the process pool.

        Returns ordered ``(result, stats)`` pairs, or ``None`` when the
        process path cannot run (unsupported searcher, shared memory
        unavailable) and the caller should use the thread path instead —
        the fallback is counted, never silent.  A chunk whose worker
        crashes is retried once on the respawned slot, then runs inline
        in the parent: a dying worker degrades throughput, never the
        batch.
        """
        from repro import parallel as par

        try:
            token = par.snapshot_token(searcher)
        except par.UnsupportedSearcher as exc:
            self.process_fallbacks += 1
            self.last_fallback_reason = f"unsupported searcher: {exc}"
            return None
        if not par.parallel_available():
            self.process_fallbacks += 1
            self.last_fallback_reason = "shared memory unavailable"
            return None

        record = self._ensure_arena(searcher, token)
        manager = self._arena_manager
        manager.acquire(record)
        try:
            pool = self._process_pool()
            pin = (token, {"manifest": record.arena.manifest(),
                           "spec": record.spec})
            nq = len(batch)
            bounds = np.linspace(
                0, nq, min(self.num_workers, nq) + 1
            ).astype(int)
            jobs = []
            for slot in range(len(bounds) - 1):
                lo, hi = int(bounds[slot]), int(bounds[slot + 1])
                if lo == hi:
                    continue
                digests = []
                masks = {}
                for row in range(lo, hi):
                    mask = compiled[row].mask
                    digest = hashlib.sha1(mask.tobytes()).digest()
                    digests.append(digest)
                    if digest not in masks:
                        masks[digest] = mask.tobytes()
                payload = {
                    "token": token,
                    "queries": np.ascontiguousarray(batch.queries[lo:hi]),
                    "k": batch.k,
                    "ef_search": batch.ef_search,
                    "mask_digests": digests,
                    "masks": masks,
                }
                jobs.append((slot, lo, hi, payload))

            def run_chunk(job):
                slot, lo, hi, payload = job
                try:
                    out = pool.call(slot, "search_chunk", payload, pin=pin)
                except par.WorkerCrash:
                    self.chunk_retries += 1
                    try:
                        out = pool.call(
                            slot, "search_chunk", payload, pin=pin
                        )
                    except par.WorkerCrash:
                        self.chunk_inline_fallbacks += 1
                        return [run_one(i) for i in range(lo, hi)]
                return [
                    (result, _result_stats(lo + offset, result, elapsed,
                                           hit_flags[lo + offset]))
                    for offset, (result, elapsed) in enumerate(out)
                ]

            if len(jobs) == 1:
                chunk_outputs = [run_chunk(jobs[0])]
            else:
                chunk_outputs = list(self._executor().map(run_chunk, jobs))
            return [pair for output in chunk_outputs for pair in output]
        finally:
            manager.release(record)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def search_batch(
        self,
        batch,
        predicates=None,
        k: int | None = None,
        ef_search: int = 64,
    ) -> BatchResult:
        """Execute a batch; returns results in submission order.

        Accepts either a prebuilt :class:`QueryBatch` or the raw pieces
        (``queries, predicates, k, ef_search``) which are normalized via
        :meth:`QueryBatch.build`.
        """
        if self._closed:
            raise RuntimeError(
                "SearchEngine is closed; create a new engine (close() "
                "released its worker pools and shared-memory arenas)"
            )
        if not isinstance(batch, QueryBatch):
            if k is None:
                raise ValueError(
                    "k is required when passing raw queries/predicates"
                )
            batch = QueryBatch.build(batch, predicates, k=k, ef_search=ef_search)

        start = time.perf_counter()
        # Materialize the frozen snapshot up front so worker threads
        # share one immutable adjacency instead of racing to build it.
        freeze = getattr(self.searcher, "freeze", None)
        if callable(freeze):
            freeze()
        # Snapshot-per-batch hook: lifecycle searchers pin one published
        # epoch here, so every query in the batch reads the same
        # immutable (base, delta, tombstone) state even while writers
        # publish newer epochs concurrently.  Released after the batch.
        acquire = getattr(self.searcher, "acquire_read_snapshot", None)
        snapshot = acquire() if callable(acquire) else None
        searcher = self.searcher if snapshot is None else snapshot
        try:
            # Batch-lifecycle hook: adaptive routers reset/mark their
            # per-batch feedback epoch here, before the first query runs.
            begin_batch = getattr(self.searcher, "begin_batch", None)
            if callable(begin_batch):
                begin_batch()
            # Compile against the pinned snapshot's base table when one
            # exists: the searcher's current table can move to a newer
            # epoch mid-batch, and masks must match the table the
            # queries will actually be filtered over.
            table = self._table_override
            if table is None and snapshot is not None:
                table = getattr(
                    getattr(snapshot, "base", None), "table", None
                )
            if table is None:
                table = self.table
            compiled, hit_flags = self._compile_predicates(
                batch.predicates, table
            )

            if len(batch) == 0:
                return BatchResult(
                    results=[], stats=[],
                    wall_time_s=time.perf_counter() - start,
                    num_workers=self.num_workers,
                )

            def run_one(index: int) -> tuple[SearchResult, QueryStats]:
                begin = time.perf_counter()
                result = searcher.search(
                    batch.queries[index], compiled[index], batch.k,
                    ef_search=batch.ef_search,
                )
                elapsed = time.perf_counter() - begin
                return result, _result_stats(
                    index, result, elapsed, hit_flags[index]
                )

            pairs = None
            if self.executor == "process":
                pairs = self._process_pairs(
                    searcher, batch, compiled, hit_flags, run_one
                )
            if pairs is None:
                if (self.executor == "sync" or self.num_workers == 1
                        or len(batch) == 1):
                    pairs = [run_one(i) for i in range(len(batch))]
                else:
                    # executor.map yields in submission order, so result
                    # ordering is deterministic whatever the completion
                    # order.
                    pairs = list(
                        self._executor().map(run_one, range(len(batch)))
                    )
        finally:
            if snapshot is not None:
                self.searcher.release_read_snapshot(snapshot)

        return BatchResult(
            results=[result for result, _ in pairs],
            stats=[stats for _, stats in pairs],
            wall_time_s=time.perf_counter() - start,
            num_workers=self.num_workers,
        )

    def _compile_predicates(self, predicates, table=None) -> tuple[list, list]:
        """Compile each predicate through the LRU cache (main thread).

        Pre-compiled predicates pass through untouched and count as
        cache hits (no mask materialization happened on their behalf).
        """
        if table is None:
            table = self.table
        compiled: list[CompiledPredicate] = []
        hit_flags: list[bool] = []
        for predicate in predicates:
            if isinstance(predicate, CompiledPredicate):
                compiled.append(predicate)
                hit_flags.append(True)
                continue
            if table is None:
                raise ValueError(
                    "engine has no attribute table to compile predicates "
                    "against; pass CompiledPredicate inputs or table="
                )
            mask, was_hit = self.cache.get_or_compile(predicate, table)
            compiled.append(mask)
            hit_flags.append(was_hit)
        return compiled, hit_flags

    def cache_info(self) -> CacheInfo:
        """Hit/miss/size counters of the predicate cache."""
        return self.cache.info()
