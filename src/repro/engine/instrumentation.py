"""Per-query telemetry emitted by the batch engine.

Each query answered through :class:`~repro.engine.engine.SearchEngine`
yields one :class:`QueryStats` record: the paper's hardware-independent
cost measure (distance computations, Table 3), the traversal shape
(hops, visited nodes), predicate-cache behaviour, and wall-time.  Batch
summaries aggregate these into p50/p95/p99 percentiles via
:func:`repro.eval.stats.percentile_summary`.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class QueryStats:
    """Instrumentation for one query executed by the batch engine.

    Attributes:
        query_index: position of the query in its batch (results and
            stats lists are both ordered by this index).
        distance_computations: distances evaluated answering this query
            — identical to ``SearchResult.distance_computations`` and to
            the delta of the global distance tally for a lone query.
        hops: graph nodes expanded during traversal (0 for flat scans).
        visited_nodes: visited-set insertions during traversal (0 for
            flat scans).
        predicate_cache_hit: True when the query's predicate mask came
            from the engine's LRU cache (or was supplied pre-compiled);
            False when the engine had to materialize the mask.
        wall_time_s: wall-clock seconds spent inside the underlying
            ``search`` call, measured on the worker thread.
        shards_probed: shards that executed a search for this query
            (0 for unsharded searchers).
        shards_pruned: shards the router proved empty and skipped
            (0 for unsharded searchers).  For a sharded searcher
            ``shards_probed + shards_pruned`` equals its shard count —
            the accounting invariant the shard test suite pins.
        shards_failed: probed shards that exhausted their resilience
            retry budget on exceptions, invalid payloads, or open
            circuit breakers (0 without a resilience policy).
        shards_timed_out: probed shards dropped for exceeding their
            per-shard deadline; disjoint from ``shards_failed``, and
            ``shards_failed + shards_timed_out <= shards_probed``.
        degraded: True when this query returned a partial top-k over
            surviving shards rather than the full scatter-gather.
        recall_ceiling: estimated upper bound on this query's recall
            given shard failures (1.0 when not degraded), from the
            router's per-shard selectivity estimates.
        route_chosen: the route that produced this query's final
            results (``""`` for searchers without a route planner;
            ``"pre-filter"`` after a mid-search fallback).
        route_reason: the planner's decision rationale, or the walk
            monitor's abort reason after a fallback (``""`` when
            unrouted).
        fallback_triggered: True when a monitored graph walk was
            abandoned mid-search and the results come from the
            pre-filter fallback.
        estimator_error: signed selectivity-estimation error
            (``estimate - exact``) of the routing decision (0.0 when
            unrouted).
        quantized_distances: approximate distances evaluated on the
            quantized (int8/PQ) hot path for this query — disjoint
            from ``distance_computations``, which stays exact-float32
            only (0 for unquantized searchers).
        rerank_distances: exact float32 distances spent re-scoring the
            quantized candidate head (a subset of
            ``distance_computations``; 0 when unquantized).
        rerank_factor: the rerank budget multiplier in effect
            (``rerank_factor * k`` candidates re-scored; 0.0 when
            unquantized).
        queue_wait_ms: milliseconds the query spent in the serving
            layer's coalescing buffer before dispatch (0.0 for direct
            engine calls).
        batch_size_served: size of the coalesced GEMM batch the query
            rode in (0 for direct engine calls).
        tenant_id: submitting tenant in the serving layer (``""`` for
            direct engine calls).
        epoch: lifecycle epoch snapshot that answered the query (0 for
            searchers without a streaming lifecycle).  Every query in a
            batch reports the same epoch — the engine pins one snapshot
            per :class:`~repro.engine.engine.QueryBatch`.
    """

    query_index: int
    distance_computations: int
    hops: int
    visited_nodes: int
    predicate_cache_hit: bool
    wall_time_s: float
    shards_probed: int = 0
    shards_pruned: int = 0
    shards_failed: int = 0
    shards_timed_out: int = 0
    degraded: bool = False
    recall_ceiling: float = 1.0
    route_chosen: str = ""
    route_reason: str = ""
    fallback_triggered: bool = False
    estimator_error: float = 0.0
    quantized_distances: int = 0
    rerank_distances: int = 0
    rerank_factor: float = 0.0
    queue_wait_ms: float = 0.0
    batch_size_served: int = 0
    tenant_id: str = ""
    epoch: int = 0

    def to_dict(self) -> dict:
        """The record as a plain JSON-serializable dict."""
        return dataclasses.asdict(self)
