"""Batched, concurrent query execution with per-query instrumentation.

The serving layer over the reproduction's index structures: freeze an
index snapshot once, then answer batches of (vector, predicate) queries
across a thread pool with deterministic result ordering, an LRU cache
for compiled-predicate bitmasks, and per-query
distance/hop/latency telemetry aggregated into p50/p95/p99 summaries.

Quickstart::

    from repro.engine import QueryBatch, SearchEngine

    engine = SearchEngine(index, num_workers=4)
    batch = QueryBatch.build(queries, Equals("label", 3), k=10)
    result = engine.search_batch(batch)
    result.results[0].ids          # same as index.search(queries[0], ...)
    result.stats[0].distance_computations
    result.summary()["latency_s"]["p95"]
"""

from repro.engine.batching import BatchSearchMixin
from repro.engine.cache import CacheInfo, PredicateCache
from repro.engine.engine import (
    BatchResult,
    QueryBatch,
    SearchEngine,
    resolve_table,
)
from repro.engine.instrumentation import QueryStats

__all__ = [
    "BatchResult",
    "BatchSearchMixin",
    "CacheInfo",
    "PredicateCache",
    "QueryBatch",
    "QueryStats",
    "SearchEngine",
    "resolve_table",
]
