"""Seeded random-number-generator helpers.

Every stochastic component in the library (HNSW level assignment, dataset
generation, workload sampling) accepts either an integer seed or a
``numpy.random.Generator``.  These helpers normalize both into generators
so results are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Passing an existing generator returns it unchanged, so components can
    share one stream; passing ``None`` gives a fresh nondeterministic one.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``count`` independent child generators.

    Useful when a benchmark needs separate streams for dataset generation
    and query sampling that stay decoupled as parameters change.
    """
    root = default_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(count)]
