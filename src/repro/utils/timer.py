"""A tiny wall-clock timer used by the benchmark harness."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example:
        >>> with Timer() as t:
        ...     sum(range(1000))
        500500
        >>> t.elapsed >= 0.0
        True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
