"""Pluggable time sources for deadline and backoff logic.

Everything in the resilience layer (per-shard deadlines, retry
backoff, circuit-breaker reset windows) reads time through a
:class:`Clock` rather than calling :mod:`time` directly.  Production
code uses :class:`SystemClock`; the chaos test suite and ``bench-chaos``
substitute a :class:`FakeClock`, whose ``sleep`` advances virtual time
instantly — so fault schedules with multi-second latency spikes run in
microseconds of wall time and are bit-for-bit deterministic.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Interface: a monotonic time source plus a sleep primitive.

    ``monotonic`` values are only compared against each other, never
    against wall-clock timestamps, so any monotonically non-decreasing
    float works.
    """

    def monotonic(self) -> float:
        """Seconds on a monotonically non-decreasing axis."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (really or virtually) for ``seconds``."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real thing: ``time.monotonic`` + ``time.sleep``."""

    def monotonic(self) -> float:
        """Current ``time.monotonic()`` reading."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Really sleep via ``time.sleep`` (no-op for non-positive)."""
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """Deterministic virtual clock for tests and chaos benchmarks.

    ``sleep`` advances virtual time atomically and returns immediately;
    ``advance`` does the same without the sleep framing.  All state
    transitions are lock-protected, so concurrent sleepers interleave
    safely (each advance is atomic), though per-thread *elapsed*
    measurements are only exact when probes run sequentially — the
    chaos suite therefore scatters shard probes on the calling thread.

    Args:
        start: initial reading of :meth:`monotonic`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()
        self._slept = 0.0

    def monotonic(self) -> float:
        """Current virtual time."""
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        """Advance virtual time by ``seconds`` without blocking."""
        if seconds > 0:
            with self._lock:
                self._now += float(seconds)
                self._slept += float(seconds)

    def advance(self, seconds: float) -> None:
        """Move virtual time forward (e.g. to expire breaker windows)."""
        if seconds < 0:
            raise ValueError(f"cannot rewind a monotonic clock ({seconds})")
        with self._lock:
            self._now += float(seconds)

    @property
    def total_slept(self) -> float:
        """Virtual seconds spent inside :meth:`sleep` so far."""
        with self._lock:
            return self._slept
