"""Shared utilities: seeded RNG helpers and timers."""

from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.timer import Timer

__all__ = ["default_rng", "spawn_rngs", "Timer"]
