"""Shared utilities: seeded RNG helpers, timers, and pluggable clocks."""

from repro.utils.clock import Clock, FakeClock, SystemClock
from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.timer import Timer

__all__ = [
    "Clock",
    "FakeClock",
    "SystemClock",
    "Timer",
    "default_rng",
    "spawn_rngs",
]
