"""FilteredVamana (FilteredDiskANN algorithm 1) — LCPS comparator.

A flat graph built by inserting points in random order: each insertion
runs FilteredGreedySearch from the inserted point's label start node,
prunes the visited pool with the label-aware RobustPrune, and patches
reverse edges.  Serves only equality predicates over one low-cardinality
label column — the restriction the ACORN paper's §7.3 benchmarks
exploit on SIFT1M/Paper and that disqualifies it from the HCPS datasets.
"""

from __future__ import annotations

import numpy as np

from repro.attributes.table import AttributeTable
from repro.engine.batching import BatchSearchMixin
from repro.baselines.vamana_common import extract_equality_label, greedy_search, robust_prune
from repro.hnsw.hnsw import SearchResult
from repro.predicates.base import CompiledPredicate, Predicate
from repro.utils.rng import default_rng
from repro.vectors.distance import Metric
from repro.vectors.store import VectorStore


class FilteredVamanaIndex(BatchSearchMixin):
    """Label-filtered Vamana graph (equality predicates only).

    Args:
        vectors: base matrix (n, d).
        table: attributes aligned with ``vectors``.
        label_column: integer column holding each entity's single label.
        r: graph degree bound (paper's recommended R=96).
        l: construction beam width (paper's recommended L=90).
        alpha: RobustPrune slack (DiskANN convention, 1.2).
    """

    def __init__(
        self,
        vectors: np.ndarray,
        table: AttributeTable,
        label_column: str,
        r: int = 32,
        l: int = 64,
        alpha: float = 1.2,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(table) != vectors.shape[0]:
            raise ValueError(
                f"table has {len(table)} rows but got {vectors.shape[0]} vectors"
            )
        self.store = VectorStore.from_array(vectors, metric=metric)
        self.table = table
        self.label_column = label_column
        self.labels = np.asarray(table.column(label_column))
        self.r = int(r)
        self.l = int(l)
        self.alpha = float(alpha)
        self.adjacency: list[list[int]] = [[] for _ in range(len(vectors))]
        self.start_nodes = self._choose_start_nodes()
        self._build(default_rng(seed))

    def __len__(self) -> int:
        return len(self.store)

    def _choose_start_nodes(self) -> dict[object, int]:
        """One start point per label: the label's medoid-approximation.

        FilteredDiskANN designates load-balanced start nodes per label;
        we pick the point nearest its label's centroid.
        """
        starts: dict[object, int] = {}
        vectors = self.store.vectors
        for label in np.unique(self.labels):
            ids = np.flatnonzero(self.labels == label)
            centroid = vectors[ids].mean(axis=0)
            diffs = vectors[ids] - centroid
            starts[label] = int(ids[np.argmin(np.einsum("ij,ij->i", diffs, diffs))])
        return starts

    def _build(self, rng: np.random.Generator) -> None:
        computer = self.store.computer()
        order = rng.permutation(len(self.store))
        for point in order.tolist():
            label = self.labels[point]
            start = self.start_nodes[label]
            if start == point:
                continue
            allowed = self.labels == label
            _, visited = greedy_search(
                computer,
                self.store.vectors[point],
                self.adjacency,
                [start],
                self.l,
                allowed=allowed,
            )
            if not visited:
                continue
            pool_ids = np.asarray(visited, dtype=np.intp)
            dists = computer.distances_to(self.store.vectors[point], pool_ids)
            pool = list(zip(dists.tolist(), visited))
            kept = robust_prune(
                computer, point, pool, self.alpha, self.r,
                labels=self.labels, point_labels=label,
            )
            self.adjacency[point] = kept
            for neighbor in kept:
                self._patch_reverse(computer, neighbor, point)

    def _patch_reverse(self, computer, owner: int, new_neighbor: int) -> None:
        if new_neighbor in self.adjacency[owner]:
            return
        self.adjacency[owner].append(new_neighbor)
        if len(self.adjacency[owner]) <= self.r:
            return
        ids = np.asarray(self.adjacency[owner], dtype=np.intp)
        dists = computer.distances_to(self.store.vectors[owner], ids)
        pool = list(zip(dists.tolist(), self.adjacency[owner]))
        self.adjacency[owner] = robust_prune(
            computer, owner, pool, self.alpha, self.r,
            labels=self.labels, point_labels=self.labels[owner],
        )

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
    ) -> SearchResult:
        """FilteredGreedySearch from the query label's start node."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        label = extract_equality_label(predicate, self.label_column)
        if label not in self.start_nodes:
            return SearchResult(
                np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float32), 0
            )
        computer = self.store.computer()
        query = computer.set_query(query)
        beam, _ = greedy_search(
            computer, query, self.adjacency, [self.start_nodes[label]],
            max(ef_search, k), allowed=self.labels == label,
        )
        top = beam[:k]
        return SearchResult(
            np.asarray([nid for _, nid in top], dtype=np.intp),
            np.asarray([dist for dist, _ in top], dtype=np.float32),
            computer.count,
        )

    def nbytes(self) -> int:
        """Vector payload + adjacency footprint."""
        edges = sum(len(lst) for lst in self.adjacency)
        return self.store.nbytes() + 4 * edges
