"""Pre-filtering: resolve the predicate, then brute-force scan.

The first of the two predominant baselines (paper §3.2): compute
``X_p``, the set of entities passing the predicate, and exhaustively
rank them by distance.  Recall is always perfect; the cost is
``O(s·n + K)`` distance computations, which makes pre-filtering the
method of choice only at very low selectivity — exactly why ACORN uses
it as the fall-back below ``s_min`` (§5.2).
"""

from __future__ import annotations

import numpy as np

from repro.attributes.table import AttributeTable
from repro.engine.batching import BatchSearchMixin
from repro.hnsw.hnsw import SearchResult
from repro.predicates.base import CompiledPredicate, Predicate
from repro.vectors.distance import Metric
from repro.vectors.store import VectorStore


class PreFilterSearcher(BatchSearchMixin):
    """Brute-force hybrid search over the predicate-passing subset."""

    def __init__(
        self,
        vectors: np.ndarray,
        table: AttributeTable,
        metric: "Metric | str" = Metric.L2,
    ) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(table) != vectors.shape[0]:
            raise ValueError(
                f"table has {len(table)} rows but got {vectors.shape[0]} vectors"
            )
        self.store = VectorStore.from_array(vectors, metric=metric)
        self.table = table

    def __len__(self) -> int:
        return len(self.store)

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        **_ignored,
    ) -> SearchResult:
        """Exact K nearest passing neighbors (perfect recall).

        Extra keyword arguments (e.g. ``ef_search``) are accepted and
        ignored so pre-filtering is interchangeable with graph searchers
        in the benchmark harness.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        compiled = (
            predicate
            if isinstance(predicate, CompiledPredicate)
            else predicate.compile(self.table)
        )
        passing = compiled.passing_ids
        if passing.size == 0:
            return SearchResult(
                np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float32), 0
            )
        computer = self.store.computer()
        query = computer.set_query(query)
        dists = computer.distances_to(query, passing)
        take = min(k, passing.size)
        order = np.argpartition(dists, take - 1)[:take]
        order = order[np.argsort(dists[order])]
        return SearchResult(
            passing[order].astype(np.intp), dists[order], computer.count
        )

    def nbytes(self) -> int:
        """Flat-index footprint: just the vector payload (Table 5)."""
        return self.store.nbytes()
