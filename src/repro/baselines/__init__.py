"""Every hybrid-search method the paper benchmarks against (§7.2).

Re-implemented from scratch:

- :class:`PreFilterSearcher` — resolve the predicate first, brute-force
  scan the survivors (perfect recall, O(s·n) cost).
- :class:`PostFilterSearcher` — over-search an HNSW index for ``K/s``
  candidates, then filter (the paper's strengthened post-filter, not
  the weak fixed-K variant of prior work).
- :class:`OraclePartitionIndex` — one HNSW per known predicate; the
  theoretically-ideal strategy of §4 that ACORN emulates.
- :class:`FilteredVamanaIndex` / :class:`StitchedVamanaIndex` — the two
  FilteredDiskANN algorithms (equality labels only).
- :class:`NhqIndex` — NHQ's fusion-distance graph (single attribute,
  equality only).
- :class:`IvfFlatIndex` — Milvus-style IVF-Flat with post-filtering.
"""

from repro.baselines.filtered_vamana import FilteredVamanaIndex
from repro.baselines.ivf import IvfFlatIndex, IvfPqIndex, IvfSq8Index
from repro.baselines.nhq import NhqIndex
from repro.baselines.oracle import OraclePartitionIndex
from repro.baselines.postfilter import PostFilterSearcher
from repro.baselines.prefilter import PreFilterSearcher
from repro.baselines.stitched_vamana import StitchedVamanaIndex

__all__ = [
    "FilteredVamanaIndex",
    "IvfFlatIndex",
    "IvfPqIndex",
    "IvfSq8Index",
    "NhqIndex",
    "OraclePartitionIndex",
    "PostFilterSearcher",
    "PreFilterSearcher",
    "StitchedVamanaIndex",
]
