"""The oracle partition index (paper §4).

The theoretically ideal hybrid-search strategy: if every query
predicate were known at construction time, one HNSW index could be
built per predicate over exactly ``X_p``, giving ``O(s(log(sn) + K))``
search.  It is impractical for real predicate sets (unbounded
cardinality, one full index per predicate), but it is the upper bound
ACORN's predicate subgraphs are designed to emulate, and the paper
benchmarks it on the LCPS datasets (Figures 7, 13; Table 3).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable

import numpy as np

from repro.attributes.table import AttributeTable
from repro.engine.batching import BatchSearchMixin
from repro.hnsw.hnsw import HnswIndex, SearchResult
from repro.predicates.base import CompiledPredicate, Predicate
from repro.vectors.distance import Metric


def _default_key(predicate: Predicate) -> Hashable:
    """Key predicates by repr — stable for this library's predicates."""
    return repr(predicate)


class OraclePartitionIndex(BatchSearchMixin):
    """One HNSW partition per known query predicate.

    Args:
        vectors: full base matrix (n, d).
        table: attributes aligned with ``vectors``.
        predicates: the full (finite!) predicate set, known a priori.
        m / ef_construction / metric / seed: HNSW parameters shared by
            every partition (the paper uses the post-filter baseline's
            parameters).
        key_fn: maps a predicate to a hashable partition key; defaults
            to ``repr``.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        table: AttributeTable,
        predicates: Iterable[Predicate],
        m: int = 32,
        ef_construction: int = 40,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
        key_fn: Callable[[Predicate], Hashable] = _default_key,
    ) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        self.table = table
        self._key_fn = key_fn
        self._partitions: dict[Hashable, tuple[HnswIndex, np.ndarray]] = {}
        for predicate in predicates:
            key = key_fn(predicate)
            if key in self._partitions:
                continue
            ids = np.flatnonzero(predicate.mask(table))
            index = HnswIndex(
                vectors.shape[1], m=m, ef_construction=ef_construction,
                metric=metric, seed=seed,
            )
            for node in ids:
                index.add(vectors[node])
            self._partitions[key] = (index, ids)

    @property
    def num_partitions(self) -> int:
        """Number of per-predicate partitions built."""
        return len(self._partitions)

    def partition_for(self, predicate: Predicate) -> HnswIndex:
        """The HNSW partition serving ``predicate`` (KeyError if unknown)."""
        return self._partitions[self._require(predicate)][0]

    def _require(self, predicate: Predicate) -> Hashable:
        key = self._key_fn(predicate)
        if key not in self._partitions:
            raise KeyError(
                f"predicate {predicate!r} was not in the construction-time "
                "predicate set; the oracle method cannot serve it"
            )
        return key

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
    ) -> SearchResult:
        """Search the partition matching ``predicate`` exactly."""
        if isinstance(predicate, CompiledPredicate):
            predicate = predicate.predicate
        index, ids = self._partitions[self._require(predicate)]
        result = index.search(query, k, ef_search=ef_search)
        # Translate partition-local ids back to global entity ids.
        return SearchResult(
            ids[result.ids].astype(np.intp),
            result.distances,
            result.distance_computations,
        )

    def nbytes(self) -> int:
        """Total footprint across all partitions."""
        return sum(index.nbytes() for index, _ in self._partitions.values())
