"""Shared machinery for the DiskANN-family comparators.

FilteredDiskANN (paper [25]) contributes two algorithms the ACORN paper
benchmarks on the LCPS datasets: FilteredVamana and StitchedVamana.
Both restrict predicates to *equality over a small label domain* —
exactly the limitation ACORN removes — and both are flat (single-level)
graphs searched with a filtered greedy traversal from per-label start
points.  This module holds the pieces they share: the filtered greedy
search, the α-RNG RobustPrune (plain and filtered), and label plumbing.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

from repro.predicates.base import CompiledPredicate, Predicate
from repro.predicates.compare import Equals
from repro.vectors.distance import DistanceComputer


def extract_equality_label(predicate: "Predicate | CompiledPredicate", column: str):
    """The value of an ``Equals(column, value)`` predicate.

    The DiskANN-family and NHQ comparators only serve equality
    predicates over one column; anything else raises ``ValueError`` —
    mirroring how those systems "fail because they are unable to handle
    the high cardinality query predicate sets and non-equality predicate
    operators" (paper §7.3).
    """
    if isinstance(predicate, CompiledPredicate):
        predicate = predicate.predicate
    if not isinstance(predicate, Equals) or predicate.column != column:
        raise ValueError(
            f"this index only supports Equals({column!r}, value) predicates, "
            f"got {predicate!r}"
        )
    return predicate.value


def greedy_search(
    computer: DistanceComputer,
    query: np.ndarray,
    adjacency: list[list[int]],
    starts: Sequence[int],
    list_size: int,
    allowed: np.ndarray | None = None,
) -> tuple[list[tuple[float, int]], list[int]]:
    """(Filtered)GreedySearch of the DiskANN papers.

    Best-first beam search of width ``list_size`` over a flat graph.
    With ``allowed`` set, only nodes passing the mask are ever entered
    into the beam (FilteredGreedySearch); start points must pass.

    Returns:
        (results, visited): the beam as sorted (dist, id) pairs and the
        visit order (the candidate pool RobustPrune consumes).
    """
    starts = [s for s in starts if allowed is None or allowed[s]]
    if not starts:
        return [], []
    dists = computer.distances_to(query, np.asarray(starts, dtype=np.intp))
    beam = sorted(zip(dists.tolist(), starts))[:list_size]
    in_beam = {node for _, node in beam}
    expanded: set[int] = set()
    visited_order: list[int] = []
    heap = list(beam)
    heapq.heapify(heap)
    while heap:
        dist_c, current = heapq.heappop(heap)
        if current in expanded:
            continue
        expanded.add(current)
        visited_order.append(current)
        fresh = [
            v
            for v in adjacency[current]
            if v not in in_beam and (allowed is None or allowed[v])
        ]
        if not fresh:
            continue
        fresh_dists = computer.distances_to(query, np.asarray(fresh, dtype=np.intp))
        for node, dist in zip(fresh, fresh_dists.tolist()):
            beam.append((dist, node))
            in_beam.add(node)
            heapq.heappush(heap, (dist, node))
        beam.sort()
        if len(beam) > list_size:
            for _, dropped in beam[list_size:]:
                in_beam.discard(dropped)
            beam = beam[:list_size]
        # Re-anchor the heap on the trimmed beam to avoid expanding
        # nodes that fell out of it.
        heap = [entry for entry in beam if entry[1] not in expanded]
        heapq.heapify(heap)
    return beam, visited_order


def robust_prune(
    computer: DistanceComputer,
    point: int,
    candidates: list[tuple[float, int]],
    alpha: float,
    degree_bound: int,
    labels: np.ndarray | None = None,
    point_labels=None,
) -> list[int]:
    """(Filtered)RobustPrune of the DiskANN papers.

    Iterates candidates by ascending distance, keeps the closest, and
    discards any remaining candidate ``b`` dominated by a kept ``a``:
    ``α · d(a, b) <= d(p, b)``.  In filtered mode a kept node may only
    dominate ``b`` when its label covers the label shared by ``p`` and
    ``b`` (single-label simplification of FilteredDiskANN's subset
    condition), so pruned paths survive in every label subgraph.
    """
    pool = sorted({(dist, node) for dist, node in candidates if node != point})
    kept: list[int] = []
    while pool and len(kept) < degree_bound:
        dist_best, best = pool[0]
        kept.append(best)
        survivors: list[tuple[float, int]] = []
        if len(pool) > 1:
            rest_ids = np.asarray([node for _, node in pool[1:]], dtype=np.intp)
            dists_via_best = computer.distances_to(computer.base[best], rest_ids)
            for (dist_p, node), dist_a in zip(pool[1:], dists_via_best.tolist()):
                dominated = alpha * dist_a <= dist_p
                if dominated and labels is not None:
                    # Label-safe domination only: relay must share the label.
                    dominated = (
                        labels[best] == labels[node] and labels[best] == point_labels
                    )
                if not dominated:
                    survivors.append((dist_p, node))
        pool = survivors
    return kept
