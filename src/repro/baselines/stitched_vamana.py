"""StitchedVamana (FilteredDiskANN algorithm 2) — LCPS comparator.

Builds one small Vamana graph per label (R_small, L_small), unions
("stitches") their edges into one graph over global ids, then re-prunes
every node to R_stitched with the label-aware RobustPrune.  Like
FilteredVamana it serves only equality predicates over a small label
domain, at higher construction cost but usually better recall-QPS.
"""

from __future__ import annotations

import numpy as np

from repro.attributes.table import AttributeTable
from repro.engine.batching import BatchSearchMixin
from repro.baselines.vamana_common import extract_equality_label, greedy_search, robust_prune
from repro.hnsw.hnsw import SearchResult
from repro.predicates.base import CompiledPredicate, Predicate
from repro.utils.rng import default_rng
from repro.vectors.distance import Metric
from repro.vectors.store import VectorStore


def build_vamana_adjacency(
    computer,
    vectors: np.ndarray,
    ids: np.ndarray,
    r: int,
    l: int,
    alpha: float,
    rng: np.random.Generator,
) -> dict[int, list[int]]:
    """Plain (unfiltered) Vamana over the subset ``ids``.

    Starts from a random R-regular graph, then refines each point with
    GreedySearch-from-medoid + RobustPrune, patching reverse edges.
    Returns adjacency keyed by *global* ids.
    """
    n = ids.shape[0]
    local: list[list[int]] = [[] for _ in range(n)]
    if n == 0:
        return {}
    if n == 1:
        return {int(ids[0]): []}
    # Random initial graph keeps the refinement pass connected.
    init_degree = min(r, n - 1)
    for i in range(n):
        choices = rng.choice(n - 1, size=init_degree, replace=False)
        local[i] = [int(c) if c < i else int(c) + 1 for c in choices]

    centroid = vectors[ids].mean(axis=0)
    diffs = vectors[ids] - centroid
    medoid = int(np.argmin(np.einsum("ij,ij->i", diffs, diffs)))

    sub_vectors = vectors[ids]
    sub_computer = type(computer)(sub_vectors, metric=computer.metric)
    for point in rng.permutation(n).tolist():
        _, visited = greedy_search(
            sub_computer, sub_vectors[point], local, [medoid], l
        )
        visited = [v for v in visited if v != point]
        if not visited:
            continue
        dists = sub_computer.distances_to(
            sub_vectors[point], np.asarray(visited, dtype=np.intp)
        )
        pool = list(zip(dists.tolist(), visited))
        kept = robust_prune(sub_computer, point, pool, alpha, r)
        local[point] = kept
        for neighbor in kept:
            if point in local[neighbor]:
                continue
            local[neighbor].append(point)
            if len(local[neighbor]) > r:
                n_ids = np.asarray(local[neighbor], dtype=np.intp)
                n_dists = sub_computer.distances_to(sub_vectors[neighbor], n_ids)
                n_pool = list(zip(n_dists.tolist(), local[neighbor]))
                local[neighbor] = robust_prune(
                    sub_computer, neighbor, n_pool, alpha, r
                )
    return {
        int(ids[i]): [int(ids[j]) for j in neighbors]
        for i, neighbors in enumerate(local)
    }


class StitchedVamanaIndex(BatchSearchMixin):
    """Per-label Vamana graphs stitched into one filtered index.

    Args:
        r_small / l_small: per-label Vamana parameters.
        r_stitched: post-stitch degree bound.
        alpha: RobustPrune slack.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        table: AttributeTable,
        label_column: str,
        r_small: int = 24,
        l_small: int = 48,
        r_stitched: int = 48,
        alpha: float = 1.2,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(table) != vectors.shape[0]:
            raise ValueError(
                f"table has {len(table)} rows but got {vectors.shape[0]} vectors"
            )
        self.store = VectorStore.from_array(vectors, metric=metric)
        self.table = table
        self.label_column = label_column
        self.labels = np.asarray(table.column(label_column))
        self.r_stitched = int(r_stitched)
        rng = default_rng(seed)
        computer = self.store.computer()

        self.adjacency: list[list[int]] = [[] for _ in range(len(vectors))]
        self.start_nodes: dict[object, int] = {}
        for label in np.unique(self.labels):
            ids = np.flatnonzero(self.labels == label)
            centroid = vectors[ids].mean(axis=0)
            diffs = vectors[ids] - centroid
            self.start_nodes[label] = int(
                ids[np.argmin(np.einsum("ij,ij->i", diffs, diffs))]
            )
            sub_adj = build_vamana_adjacency(
                computer, self.store.vectors, ids, r_small, l_small, alpha, rng
            )
            # Stitch: union the per-label edges into the global graph.
            for node, neighbors in sub_adj.items():
                merged = self.adjacency[node] + [
                    v for v in neighbors if v not in self.adjacency[node]
                ]
                self.adjacency[node] = merged

        # Final pass: re-prune every node to R_stitched, label-aware.
        for node in range(len(vectors)):
            if len(self.adjacency[node]) <= self.r_stitched:
                continue
            ids = np.asarray(self.adjacency[node], dtype=np.intp)
            dists = computer.distances_to(self.store.vectors[node], ids)
            pool = list(zip(dists.tolist(), self.adjacency[node]))
            self.adjacency[node] = robust_prune(
                computer, node, pool, alpha, self.r_stitched,
                labels=self.labels, point_labels=self.labels[node],
            )

    def __len__(self) -> int:
        return len(self.store)

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
    ) -> SearchResult:
        """FilteredGreedySearch from the query label's start node."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        label = extract_equality_label(predicate, self.label_column)
        if label not in self.start_nodes:
            return SearchResult(
                np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float32), 0
            )
        computer = self.store.computer()
        query = computer.set_query(query)
        beam, _ = greedy_search(
            computer, query, self.adjacency, [self.start_nodes[label]],
            max(ef_search, k), allowed=self.labels == label,
        )
        top = beam[:k]
        return SearchResult(
            np.asarray([nid for _, nid in top], dtype=np.intp),
            np.asarray([dist for dist, _ in top], dtype=np.float32),
            computer.count,
        )

    def nbytes(self) -> int:
        """Vector payload + adjacency footprint."""
        edges = sum(len(lst) for lst in self.adjacency)
        return self.store.nbytes() + 4 * edges
