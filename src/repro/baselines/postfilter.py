"""HNSW post-filtering: over-search, then drop failing results.

The second predominant baseline (paper §3.2): run unfiltered ANN search
over the full dataset, then discard results failing the predicate.
Following the paper's strengthened implementation (§7.2), the search
gathers ``K/s`` candidates — not just K, as some prior work did — where
``s`` is the query's predicate selectivity.  Performance degrades with
low selectivity and especially with *negative query correlation*: when
passing vectors sit far from the query, the ef expansion burns distance
computations on nodes that will be thrown away.
"""

from __future__ import annotations

import math

import numpy as np

from repro.attributes.table import AttributeTable
from repro.engine.batching import BatchSearchMixin
from repro.hnsw.hnsw import HnswIndex, SearchResult
from repro.predicates.base import CompiledPredicate, Predicate


class PostFilterSearcher(BatchSearchMixin):
    """Post-filtering over an unfiltered HNSW index.

    Args:
        index: a built :class:`HnswIndex` over the full dataset.
        table: attribute table aligned with the index's node ids.
        max_oversearch: hard cap on the candidate budget, as a fraction
            of the dataset (guards ``K/s`` blow-up at tiny selectivity).
    """

    def __init__(
        self,
        index: HnswIndex,
        table: AttributeTable,
        max_oversearch: float = 1.0,
    ) -> None:
        if len(index) != len(table):
            raise ValueError(
                f"index has {len(index)} nodes but table has {len(table)} rows"
            )
        self.index = index
        self.table = table
        self.max_oversearch = max_oversearch

    def __len__(self) -> int:
        return len(self.index)

    def candidate_budget(self, k: int, selectivity: float, ef_search: int) -> int:
        """``max(ef_search, K/s)`` capped at ``max_oversearch * n``."""
        if selectivity <= 0.0:
            budget = len(self.index)
        else:
            budget = max(ef_search, math.ceil(k / selectivity))
        return int(min(budget, self.max_oversearch * len(self.index)))

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
    ) -> SearchResult:
        """K nearest passing neighbors via over-search + filter."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        compiled = (
            predicate
            if isinstance(predicate, CompiledPredicate)
            else predicate.compile(self.table)
        )
        budget = self.candidate_budget(k, compiled.selectivity, ef_search)
        candidates, ncomp = self.index.search_candidates(query, max(budget, k))
        mask = compiled.mask
        passing = [(dist, nid) for dist, nid in candidates if mask[nid]][:k]
        return SearchResult(
            np.asarray([nid for _, nid in passing], dtype=np.intp),
            np.asarray([dist for dist, _ in passing], dtype=np.float32),
            ncomp,
        )

    def freeze(self):
        """Freeze the wrapped HNSW's CSR snapshot (batch-engine hook).

        Without this the engine's worker threads would race to build the
        lazy snapshot on the first batch after construction.
        """
        return self.index.freeze()

    def nbytes(self) -> int:
        """Footprint of the wrapped HNSW index."""
        return self.index.nbytes()
