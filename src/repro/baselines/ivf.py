"""IVF-Flat with filtering — the Milvus-family comparator.

Milvus's strongest configurations in the ACORN paper's figures are IVF
variants (§7.2).  IVF-Flat partitions the dataset with k-means, probes
the ``nprobe`` nearest centroids at query time, and — in the
hybrid-search configuration — applies the predicate bitmap to the
probed candidates before ranking (the "approved list" filtering Milvus
performs, §8).  Like all space-partitioning post-filters it degrades
when passing points live outside the probed cells.
"""

from __future__ import annotations

import numpy as np

from repro.attributes.table import AttributeTable
from repro.engine.batching import BatchSearchMixin
from repro.hnsw.hnsw import SearchResult
from repro.predicates.base import CompiledPredicate, Predicate
from repro.utils.rng import default_rng
from repro.vectors.distance import Metric, pairwise_distances
from repro.vectors.store import VectorStore


def kmeans(
    vectors: np.ndarray,
    n_clusters: int,
    n_iter: int = 10,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means; returns (centroids, assignments).

    Plain and deterministic given a seed — enough fidelity for an IVF
    coarse quantizer.  Empty clusters are re-seeded from the farthest
    points of the largest cluster.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    n = vectors.shape[0]
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    n_clusters = min(n_clusters, n)
    rng = default_rng(seed)
    centroids = vectors[rng.choice(n, size=n_clusters, replace=False)].copy()
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(n_iter):
        dists = pairwise_distances(centroids, vectors)
        assignments = np.argmin(dists, axis=1)
        for cluster in range(n_clusters):
            members = assignments == cluster
            if members.any():
                centroids[cluster] = vectors[members].mean(axis=0)
            else:
                biggest = np.bincount(assignments, minlength=n_clusters).argmax()
                pool = np.flatnonzero(assignments == biggest)
                far = pool[np.argmax(dists[pool, biggest])]
                centroids[cluster] = vectors[far]
    return centroids, assignments


class IvfFlatIndex(BatchSearchMixin):
    """Inverted-file index with exact in-cell distances.

    Args:
        vectors: base matrix (n, d).
        table: attributes aligned with ``vectors``.
        n_clusters: number of IVF cells (defaults to ``sqrt(n)``).
        metric: distance metric.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        table: AttributeTable,
        n_clusters: int | None = None,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(table) != vectors.shape[0]:
            raise ValueError(
                f"table has {len(table)} rows but got {vectors.shape[0]} vectors"
            )
        self.store = VectorStore.from_array(vectors, metric=metric)
        self.table = table
        n = vectors.shape[0]
        if n_clusters is None:
            n_clusters = max(1, int(np.sqrt(n)))
        self.centroids, assignments = kmeans(vectors, n_clusters, seed=seed)
        self.cells: list[np.ndarray] = [
            np.flatnonzero(assignments == c) for c in range(self.centroids.shape[0])
        ]

    def __len__(self) -> int:
        return len(self.store)

    @property
    def n_clusters(self) -> int:
        """Number of IVF cells."""
        return self.centroids.shape[0]

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
        nprobe: int | None = None,
    ) -> SearchResult:
        """Probe cells, filter candidates by the predicate, rank exactly.

        ``nprobe`` defaults to a value derived from ``ef_search`` so the
        harness can sweep one knob across all methods.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if nprobe is None:
            # Map the harness's ef knob onto a probe count: ef=64 on a
            # sqrt(n)-cell index probes ~ 1/8th of the cells.
            nprobe = max(1, min(self.n_clusters, ef_search * self.n_clusters // 512))
        compiled = (
            predicate
            if isinstance(predicate, CompiledPredicate)
            else predicate.compile(self.table)
        )
        computer = self.store.computer()
        query = computer.set_query(query)
        cell_dists = pairwise_distances(self.centroids, query, metric=self.store.metric)[0]
        probe = np.argsort(cell_dists)[:nprobe]
        candidates = (
            np.concatenate([self.cells[c] for c in probe])
            if probe.size
            else np.empty(0, dtype=np.int64)
        )
        candidates = candidates[compiled.mask[candidates]]
        if candidates.size == 0:
            return SearchResult(
                np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float32),
                computer.count,
            )
        dists = self._candidate_distances(computer, query, candidates)
        take = min(k, candidates.size)
        order = np.argpartition(dists, take - 1)[:take]
        order = order[np.argsort(dists[order])]
        return SearchResult(
            candidates[order].astype(np.intp), dists[order], computer.count
        )

    def _candidate_distances(
        self, computer, query: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Exact distances for the probed candidates (flat storage)."""
        return computer.distances_to(query, candidates)

    def nbytes(self) -> int:
        """Vector payload + centroid table + cell lists."""
        return (
            self.store.nbytes()
            + self.centroids.nbytes
            + sum(cell.nbytes for cell in self.cells)
        )


class IvfSq8Index(IvfFlatIndex):
    """IVF with SQ8-compressed cell storage (the Milvus IVF-SQ8 config).

    Probed candidates are ranked by asymmetric distance against their
    8-bit codes; quantization distortion trades a little recall for a
    4x smaller vector payload.
    """

    def __init__(self, vectors, table, n_clusters=None,
                 metric: "Metric | str" = Metric.L2, seed=None) -> None:
        super().__init__(vectors, table, n_clusters=n_clusters, metric=metric,
                         seed=seed)
        from repro.vectors.quantization import ScalarQuantizer

        self._quantizer = ScalarQuantizer(self.store.vectors)
        self._codes = self._quantizer.encode(self.store.vectors)

    def _candidate_distances(self, computer, query, candidates):
        # Counted like exact distances: each candidate costs one
        # (approximate) distance evaluation.
        computer.add_count(candidates.size)
        return self._quantizer.distances(query, self._codes[candidates])

    def nbytes(self) -> int:
        """Compressed payload + centroid table + cell lists."""
        return (
            self._quantizer.code_nbytes(len(self.store))
            + self.centroids.nbytes
            + sum(cell.nbytes for cell in self.cells)
        )


class IvfPqIndex(IvfFlatIndex):
    """IVF with product-quantized cell storage (the Milvus IVF-PQ config).

    Args:
        n_subspaces: PQ subspaces (must divide the dimensionality).
        n_centroids: codewords per subspace (<= 256).
    """

    def __init__(self, vectors, table, n_clusters=None, n_subspaces=8,
                 n_centroids=64, metric: "Metric | str" = Metric.L2,
                 seed=None) -> None:
        super().__init__(vectors, table, n_clusters=n_clusters, metric=metric,
                         seed=seed)
        from repro.vectors.quantization import ProductQuantizer

        self._quantizer = ProductQuantizer(
            self.store.vectors, n_subspaces=n_subspaces,
            n_centroids=n_centroids, seed=seed,
        )
        self._codes = self._quantizer.encode(self.store.vectors)

    def _candidate_distances(self, computer, query, candidates):
        computer.add_count(candidates.size)
        return self._quantizer.distances(query, self._codes[candidates])

    def nbytes(self) -> int:
        """PQ codes + codebooks + centroid table + cell lists."""
        codebooks = sum(c.nbytes for c in self._quantizer.codebooks)
        return (
            self._quantizer.code_nbytes(len(self.store))
            + codebooks
            + self.centroids.nbytes
            + sum(cell.nbytes for cell in self.cells)
        )
