"""NHQ: fusion-distance proximity graph — LCPS comparator.

NHQ (paper [63], "Navigable Proximity Graph-Driven Native Hybrid
Queries") encodes the single structured attribute alongside the vector
and searches a proximity graph with a *fusion distance*:

    d_f(u, v) = d(x_u, x_v) + w · [attr_u != attr_v]

so attribute mismatches repel candidates during routing instead of
being filtered.  It supports exactly one attribute per entity and
equality predicates only — the semantic ceiling the ACORN paper
contrasts against.  We build the navigable graph as a fused-distance
KNN graph (the KGraph variant the paper reports as stronger) and search
it with best-first beam search under the fusion distance.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.attributes.table import AttributeTable
from repro.engine.batching import BatchSearchMixin
from repro.baselines.vamana_common import extract_equality_label
from repro.hnsw.hnsw import SearchResult
from repro.predicates.base import CompiledPredicate, Predicate
from repro.utils.rng import default_rng
from repro.vectors.distance import Metric, pairwise_distances
from repro.vectors.store import VectorStore


class NhqIndex(BatchSearchMixin):
    """Fusion-distance KNN graph over vectors plus one equality attribute.

    Args:
        vectors: base matrix (n, d).
        table: attributes aligned with ``vectors``.
        label_column: the single attribute column NHQ fuses.
        degree: out-degree of the KNN graph (KGraph's K).
        weight: fusion weight w; ``None`` auto-scales to the mean
            nearest-neighbor distance so the attribute term is decisive
            but does not drown the metric term.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        table: AttributeTable,
        label_column: str,
        degree: int = 16,
        weight: float | None = None,
        metric: "Metric | str" = Metric.L2,
        batch: int = 512,
    ) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(table) != vectors.shape[0]:
            raise ValueError(
                f"table has {len(table)} rows but got {vectors.shape[0]} vectors"
            )
        self.store = VectorStore.from_array(vectors, metric=metric)
        self.table = table
        self.label_column = label_column
        self.labels = np.asarray(table.column(label_column))
        self.degree = int(degree)

        n = vectors.shape[0]
        self.adjacency = np.empty((n, min(self.degree, max(n - 1, 1))), dtype=np.int64)
        if weight is None:
            # Calibrate w to the mean random-pair distance: a label
            # mismatch then outweighs typical cross-dataset distances,
            # so routing decisively prefers matching-label candidates —
            # the regime NHQ's fusion distance needs for the hybrid
            # semantics to dominate the ranking.
            rng = default_rng(0)
            a = rng.integers(0, n, size=min(4 * n, 4096))
            b = rng.integers(0, n, size=a.shape[0])
            diffs = vectors[a] - vectors[b]
            weight = float(np.einsum("ij,ij->i", diffs, diffs).mean())
        for lo in range(0, n, batch):
            hi = min(lo + batch, n)
            block = pairwise_distances(vectors, vectors[lo:hi], metric=metric)
            mismatch = (self.labels[None, :] != self.labels[lo:hi, None]).astype(
                block.dtype
            )
            self._assign_block(block + weight * mismatch, lo, hi)
        self.weight = float(weight)

    def _assign_block(self, fused: np.ndarray, lo: int, hi: int) -> None:
        fused[np.arange(hi - lo), np.arange(lo, hi)] = np.inf
        k = self.adjacency.shape[1]
        part = np.argpartition(fused, k - 1, axis=1)[:, :k]
        rows = np.arange(hi - lo)[:, None]
        order = np.argsort(fused[rows, part], axis=1)
        self.adjacency[lo:hi] = part[rows, order]

    def __len__(self) -> int:
        return len(self.store)

    def search(
        self,
        query: np.ndarray,
        predicate: "Predicate | CompiledPredicate",
        k: int,
        ef_search: int = 64,
    ) -> SearchResult:
        """Beam search under the fusion distance; returns K matches.

        The query's attribute is the equality predicate's value; results
        are final-filtered to exact matches since fusion routing is a
        soft constraint.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        label = extract_equality_label(predicate, self.label_column)
        computer = self.store.computer()
        query = computer.set_query(query)
        n = len(self.store)
        if n == 0:
            return SearchResult(
                np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float32), 0
            )
        beam_width = max(ef_search, k)
        # Seed the beam with several deterministic pseudo-random entry
        # points — KGraph-style search initializes its pool randomly,
        # which is what makes a flat KNN graph navigable.
        n_seeds = min(n, max(16, beam_width // 4))
        starts = np.unique(
            (np.arange(n_seeds) * 2654435761 + 12345) % n
        )
        seed_dists = computer.distances_to(query, starts)
        seed_dists = seed_dists + self.weight * (self.labels[starts] != label)
        visited = np.zeros(n, dtype=bool)
        visited[starts] = True
        beam = sorted(zip(seed_dists.tolist(), starts.tolist()))
        heap = list(beam)
        heapq.heapify(heap)
        while heap:
            dist_c, current = heapq.heappop(heap)
            if len(beam) >= beam_width and dist_c > beam[-1][0]:
                break
            fresh = [v for v in self.adjacency[current].tolist() if not visited[v]]
            if not fresh:
                continue
            for v in fresh:
                visited[v] = True
            ids = np.asarray(fresh, dtype=np.intp)
            dists = computer.distances_to(query, ids)
            dists = dists + self.weight * (self.labels[ids] != label)
            for node, dist in zip(fresh, dists.tolist()):
                if len(beam) < beam_width or dist < beam[-1][0]:
                    heapq.heappush(heap, (dist, node))
                    beam.append((dist, node))
                    beam.sort()
                    if len(beam) > beam_width:
                        beam.pop()
        matching = [
            (dist, nid) for dist, nid in beam if self.labels[nid] == label
        ][:k]
        # Report true metric distances (strip the fusion term, which is
        # zero for exact matches anyway).
        return SearchResult(
            np.asarray([nid for _, nid in matching], dtype=np.intp),
            np.asarray([dist for dist, _ in matching], dtype=np.float32),
            computer.count,
        )

    def nbytes(self) -> int:
        """Vector payload + adjacency footprint."""
        return self.store.nbytes() + 4 * int(self.adjacency.size)
