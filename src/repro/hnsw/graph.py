"""Layered adjacency storage shared by HNSW and ACORN indices.

Levels are stored sparsely: level 0 contains every node, higher levels
only the nodes whose sampled maximum level reaches them.  Neighbor lists
are plain Python lists of node ids kept in ascending-distance-from-owner
order — ordering is semantically meaningful for ACORN, whose search
takes the *first* M (or first Mβ) entries of a list.
"""

from __future__ import annotations


class LayeredGraph:
    """A multi-level directed graph over integer node ids.

    Attributes:
        entry_point: id of the global entry node (-1 while empty).
    """

    def __init__(self) -> None:
        self._levels: list[dict[int, list[int]]] = []
        self._node_levels: list[int] = []
        self.entry_point = -1

    def __len__(self) -> int:
        return len(self._node_levels)

    @property
    def max_level(self) -> int:
        """Highest populated level index (-1 while empty)."""
        return len(self._levels) - 1

    def node_level(self, node_id: int) -> int:
        """Maximum level index of ``node_id`` (paper's ``l(v)``)."""
        return self._node_levels[node_id]

    def add_node(self, node_id: int, level: int) -> None:
        """Register a node present on levels ``0..level`` inclusive."""
        if node_id != len(self._node_levels):
            raise ValueError(
                f"nodes must be added densely: expected id {len(self._node_levels)}, "
                f"got {node_id}"
            )
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        self._node_levels.append(level)
        while len(self._levels) <= level:
            self._levels.append({})
        for lev in range(level + 1):
            self._levels[lev][node_id] = []
        # The entry point is NOT updated here: indices promote a node to
        # entry only after linking it, so in-progress inserts are never
        # used as search seeds.

    def neighbors(self, node_id: int, level: int) -> list[int]:
        """The (mutable) neighbor list of ``node_id`` at ``level``."""
        return self._levels[level][node_id]

    def set_neighbors(self, node_id: int, level: int, neighbor_ids: list[int]) -> None:
        """Replace the neighbor list of ``node_id`` at ``level``."""
        self._levels[level][node_id] = list(neighbor_ids)

    def nodes_at_level(self, level: int) -> list[int]:
        """All node ids present on ``level``."""
        return list(self._levels[level])

    def num_nodes_at_level(self, level: int) -> int:
        """Population of ``level``."""
        return len(self._levels[level])

    def num_edges(self, level: int | None = None) -> int:
        """Directed edge count on ``level`` (or across all levels)."""
        if level is not None:
            return sum(len(lst) for lst in self._levels[level].values())
        return sum(self.num_edges(lev) for lev in range(len(self._levels)))

    def average_out_degree(self, level: int) -> float:
        """Mean neighbor-list length on ``level`` (0.0 if empty)."""
        population = self.num_nodes_at_level(level)
        if population == 0:
            return 0.0
        return self.num_edges(level) / population

    def nbytes(self, bytes_per_edge: int = 4) -> int:
        """Approximate serialized footprint of the adjacency structure.

        Counts ``bytes_per_edge`` per directed edge plus a 4-byte level
        marker per node, matching how the paper sizes graph indices
        (Table 5 reports vectors + index together; callers add the
        vector payload).
        """
        return self.num_edges() * bytes_per_edge + 4 * len(self._node_levels)

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on breakage.

        Invariants: every neighbor exists on the same level, no
        self-loops, no duplicate entries within one list.  Used by tests
        and available to callers debugging a custom construction.
        """
        for level, adjacency in enumerate(self._levels):
            for node_id, neighbor_ids in adjacency.items():
                assert len(set(neighbor_ids)) == len(neighbor_ids), (
                    f"duplicate neighbors for node {node_id} at level {level}"
                )
                for other in neighbor_ids:
                    assert other != node_id, (
                        f"self-loop at node {node_id}, level {level}"
                    )
                    assert other in adjacency, (
                        f"node {node_id} at level {level} links to {other}, "
                        f"which is absent from that level"
                    )
