"""Neighbor-selection strategies for graph construction.

HNSW selects at most M edges from its efc candidates using an
RNG-approximation heuristic (paper §2.1, [31]): iterate candidates from
nearest to farthest and keep a candidate only if it is closer to the
inserted node than to every already-kept neighbor — i.e. prune the
longest edge of every candidate triangle.  §5.2 of the ACORN paper shows
why this *metadata-blind* rule breaks hybrid search: the kept relay node
may fail the query predicate, severing the pruned path inside the
predicate subgraph.  ACORN therefore replaces it (see
``repro.core.construction``); the implementations here serve the HNSW
baseline, the oracle partitions, and Figure 12's pruning comparison.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.vectors.distance import Metric, _KERNELS, resolve_metric


def select_neighbors_simple(
    candidates: Sequence[tuple[float, int]], m: int
) -> list[tuple[float, int]]:
    """Keep the ``m`` nearest candidates (the naive KNN selection)."""
    return sorted(candidates)[:m]


def select_neighbors_heuristic(
    vectors: np.ndarray,
    candidates: Sequence[tuple[float, int]],
    m: int,
    metric: "Metric | str" = Metric.L2,
) -> list[tuple[float, int]]:
    """HNSW's RNG-based pruning (Algorithm 4 of Malkov & Yashunin).

    Args:
        vectors: base vector matrix used for candidate-to-candidate
            distances.
        candidates: (distance-to-target, id) pairs.
        m: maximum number of neighbors to keep.
        metric: distance metric matching the candidate distances.

    Returns:
        Selected (distance, id) pairs in ascending distance order.
    """
    kernel = _KERNELS[resolve_metric(metric)]
    selected: list[tuple[float, int]] = []
    selected_ids: list[int] = []
    for dist_c, cand in sorted(candidates):
        if len(selected) >= m:
            break
        if selected_ids:
            dists_to_selected = kernel(vectors[selected_ids], vectors[cand])
            # Keep the candidate only if the target is its closest
            # already-selected relay — the RNG triangle rule.
            if bool((dists_to_selected < dist_c).any()):
                continue
        selected.append((dist_c, cand))
        selected_ids.append(cand)
    return selected
