"""Neighbor-selection strategies for graph construction.

HNSW selects at most M edges from its efc candidates using an
RNG-approximation heuristic (paper §2.1, [31]): iterate candidates from
nearest to farthest and keep a candidate only if it is closer to the
inserted node than to every already-kept neighbor — i.e. prune the
longest edge of every candidate triangle.  §5.2 of the ACORN paper shows
why this *metadata-blind* rule breaks hybrid search: the kept relay node
may fail the query predicate, severing the pruned path inside the
predicate subgraph.  ACORN therefore replaces it (see
``repro.core.construction``); the implementations here serve the HNSW
baseline, the oracle partitions, and Figure 12's pruning comparison.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.vectors.distance import Metric, _KERNELS, resolve_metric


def select_neighbors_simple(
    candidates: Sequence[tuple[float, int]], m: int
) -> list[tuple[float, int]]:
    """Keep the ``m`` nearest candidates (the naive KNN selection)."""
    return sorted(candidates)[:m]


def select_neighbors_heuristic(
    vectors: np.ndarray,
    candidates: Sequence[tuple[float, int]],
    m: int,
    metric: "Metric | str" = Metric.L2,
) -> list[tuple[float, int]]:
    """HNSW's RNG-based pruning (Algorithm 4 of Malkov & Yashunin).

    Args:
        vectors: base vector matrix used for candidate-to-candidate
            distances.
        candidates: (distance-to-target, id) pairs.
        m: maximum number of neighbors to keep.
        metric: distance metric matching the candidate distances.

    Returns:
        Selected (distance, id) pairs in ascending distance order.
    """
    kernel = _KERNELS[resolve_metric(metric)]
    selected: list[tuple[float, int]] = []
    selected_ids: list[int] = []
    for dist_c, cand in sorted(candidates):
        if len(selected) >= m:
            break
        if selected_ids:
            dists_to_selected = kernel(vectors[selected_ids], vectors[cand])
            # Keep the candidate only if the target is its closest
            # already-selected relay — the RNG triangle rule.
            if bool((dists_to_selected < dist_c).any()):
                continue
        selected.append((dist_c, cand))
        selected_ids.append(cand)
    return selected


def select_neighbors_heuristic_matrix(
    vectors: np.ndarray,
    candidates: Sequence[tuple[float, int]],
    m: int,
    metric: "Metric | str" = Metric.L2,
    dmatrix: np.ndarray | None = None,
) -> list[tuple[float, int]]:
    """Candidate-matrix variant of :func:`select_neighbors_heuristic`.

    Evaluates all candidate-to-candidate distances in one pass (one
    kernel call per candidate over the gathered block) and replays the
    RNG triangle rule from matrix row gathers — the bulk-construction
    pipeline calls this once per inserted node instead of paying a
    kernel call per (candidate, selected) pair.  ``dmatrix`` may be
    supplied precomputed; its rows must align with ``sorted(candidates)``
    with row ``i`` holding distances *from* candidate ``i`` to every
    candidate.  Keeps exactly the scalar rule's edge set whenever the
    distance values agree bitwise (always for L2, where the kernel is a
    per-row einsum; pinned by tests/property/test_pruning_props.py).
    """
    ordered = sorted(candidates)
    if dmatrix is None:
        kernel = _KERNELS[resolve_metric(metric)]
        ids = np.asarray([cand for _, cand in ordered], dtype=np.intp)
        block = vectors[ids]
        dmatrix = (
            np.stack([kernel(block, block[i]) for i in range(ids.size)])
            if ids.size else np.zeros((0, 0), dtype=vectors.dtype)
        )
    selected: list[tuple[float, int]] = []
    selected_pos: list[int] = []
    for pos, (dist_c, cand) in enumerate(ordered):
        if len(selected) >= m:
            break
        if selected_pos and bool(
            (dmatrix[pos, selected_pos] < dist_c).any()
        ):
            continue
        selected.append((dist_c, cand))
        selected_pos.append(pos)
    return selected
