"""Stochastic level assignment for hierarchical graph indices.

HNSW draws each inserted node's maximum level from an exponentially
decaying distribution ``l = floor(-ln(U) * m_L)`` with normalization
constant ``m_L = 1/ln(M)`` (paper §2.1).  ACORN deliberately keeps the
*same* constant despite its denser M·γ lists (paper §6.3.1 "Hierarchy"):
sampling nodes of any predicate subgraph at HNSW's level rates is what
makes the subgraph emulate an oracle partition, and is exactly the
property Qdrant's flattened variant loses (paper §8).
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import default_rng


def level_normalization(m: int) -> float:
    """The constant ``m_L = 1 / ln(M)``."""
    if m < 2:
        raise ValueError(f"M must be at least 2, got {m}")
    return 1.0 / math.log(m)


class LevelGenerator:
    """Draws maximum-level indices for inserted nodes."""

    def __init__(self, m: int, seed: int | np.random.Generator | None = None) -> None:
        self.m_l = level_normalization(m)
        self._rng = default_rng(seed)

    def draw(self) -> int:
        """Sample one maximum level: ``floor(-ln(unif(0,1)) * m_L)``."""
        u = self._rng.random()
        # random() lies in [0, 1); guard the measure-zero log(0) case.
        while u == 0.0:
            u = self._rng.random()
        return int(-math.log(u) * self.m_l)

    def expected_levels(self) -> float:
        """``E[l + 1] = m_L + 1`` (paper §6.1)."""
        return self.m_l + 1.0
