"""Hierarchical Navigable Small World (HNSW) graph index.

This is the substrate ACORN modifies (paper §2.1): a from-scratch
implementation of Malkov & Yashunin's index with exponentially-decaying
level assignment, greedy layered descent, ef-bounded best-first search,
and RNG-heuristic neighbor selection.  The ACORN indices in
:mod:`repro.core` reuse this package's layered graph storage and
traversal loop, exactly as the paper implements ACORN by extending an
HNSW library.
"""

from repro.hnsw.graph import LayeredGraph
from repro.hnsw.hnsw import HnswIndex
from repro.hnsw.heuristics import select_neighbors_heuristic, select_neighbors_simple
from repro.hnsw.levels import LevelGenerator
from repro.hnsw.scratch import TraversalScratch, thread_scratch
from repro.hnsw.traversal import greedy_descent, search_layer

__all__ = [
    "HnswIndex",
    "LayeredGraph",
    "LevelGenerator",
    "TraversalScratch",
    "greedy_descent",
    "search_layer",
    "select_neighbors_heuristic",
    "select_neighbors_simple",
    "thread_scratch",
]
