"""Reusable per-thread traversal scratch state.

The pre-CSR traversal allocated a fresh O(N) boolean ``visited`` array
for every level of every query — for a hierarchical descent that is
``levels × N`` bytes of allocation and zeroing per query, all of it
garbage one level later.  :class:`TraversalScratch` replaces those
throwaway arrays with one *epoch-stamped* array per thread: a node is
"visited" when its stamp equals the current epoch, so starting a fresh
visited scope is a single integer increment instead of an O(N) zeroing
pass.

Epoch stamps are uint32.  When the epoch counter reaches the dtype
maximum the array is zeroed once and the counter restarts at 1 — stale
stamps from 4 billion scopes ago can therefore never alias a live
epoch.  ``tests/hnsw/test_scratch.py`` holds the property tests for the
rollover.

One scratch serves a whole thread: the engine's worker threads each
lazily create their own through :func:`thread_scratch`, and every level
of every query on that thread reuses the same buffers.  Scratch state
is never shared across threads.
"""

from __future__ import annotations

import threading

import numpy as np

_EPOCH_DTYPE = np.uint32
MAX_EPOCH = int(np.iinfo(_EPOCH_DTYPE).max)


class TraversalScratch:
    """Epoch-stamped visited marks plus reusable heap buffers.

    Attributes:
        visited: uint32 stamp array over node ids; ``visited[v] ==
            epoch`` means ``v`` was visited in the current scope.
        epoch: the live epoch (0 before the first :meth:`begin`).
        candidates: reusable min-heap list for ``search_layer``'s
            candidate queue (cleared at each layer entry).
        results: reusable max-heap list for ``search_layer``'s dynamic
            result list (cleared at each layer entry).
    """

    __slots__ = ("visited", "epoch", "candidates", "results")

    def __init__(self, capacity: int = 0) -> None:
        self.visited = np.zeros(int(capacity), dtype=_EPOCH_DTYPE)
        self.epoch = 0
        self.candidates: list[tuple[float, int]] = []
        self.results: list[tuple[float, int]] = []

    def begin(self, num_nodes: int) -> int:
        """Open a fresh visited scope covering ids ``[0, num_nodes)``.

        Grows the stamp array if needed (preserving live marks — growth
        can only happen between scopes, but cheap safety is cheap) and
        advances the epoch, zeroing the array on uint32 rollover so no
        stale stamp can collide with the new epoch.

        Returns:
            The new epoch value (also available as ``self.epoch``).
        """
        if self.visited.size < num_nodes:
            grown = np.zeros(max(num_nodes, 2 * self.visited.size),
                             dtype=_EPOCH_DTYPE)
            grown[: self.visited.size] = self.visited
            self.visited = grown
        if self.epoch >= MAX_EPOCH:
            self.visited[:] = 0
            self.epoch = 0
        self.epoch += 1
        return self.epoch

    def mark(self, node: int) -> None:
        """Stamp one node as visited in the current scope."""
        self.visited[node] = self.epoch

    def mark_many(self, ids: np.ndarray) -> None:
        """Stamp many nodes as visited in the current scope."""
        self.visited[ids] = self.epoch

    def is_marked(self, node: int) -> bool:
        """Whether ``node`` was visited in the current scope."""
        return bool(self.visited[node] == self.epoch)


_LOCAL = threading.local()


def thread_scratch(num_nodes: int) -> TraversalScratch:
    """The calling thread's scratch, grown to cover ``num_nodes`` ids.

    Lazily creates one :class:`TraversalScratch` per thread and reuses
    it for every query that thread executes, across all indices — the
    stamp array only ever grows.  Callers still :meth:`~TraversalScratch.begin`
    their own scopes.
    """
    scratch = getattr(_LOCAL, "scratch", None)
    if scratch is None:
        scratch = TraversalScratch(num_nodes)
        _LOCAL.scratch = scratch
    return scratch
