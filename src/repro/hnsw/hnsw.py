"""The HNSW index (Malkov & Yashunin), built from scratch.

Serves three roles in the reproduction: the unfiltered-ANN baseline that
post-filtering wraps, the per-predicate index of the oracle partition
method (paper §4), and the reference construction ACORN's indices are
diffed against in tests and Figure 12.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hnsw.graph import LayeredGraph
from repro.hnsw.heuristics import select_neighbors_heuristic
from repro.hnsw.levels import LevelGenerator
from repro.hnsw.scratch import thread_scratch
from repro.hnsw.traversal import TraversalStats, search_layer
from repro.vectors.distance import DistanceComputer, Metric
from repro.vectors.quantized_store import (
    QuantizedStore,
    rerank_budget,
    resolve_quantization,
)
from repro.vectors.store import VectorStore


@dataclasses.dataclass
class SearchResult:
    """Outcome of one (possibly hybrid) index search.

    Attributes:
        ids: result node ids, ascending distance, length <= K.
        distances: matching distances (rank-preserving metric values).
        distance_computations: *exact float32* distances evaluated while
            answering, the paper's hardware-independent cost measure
            (Table 3).  On the quantized path this counts the descent
            plus the rerank tail only.
        hops: graph nodes expanded during traversal (0 for flat scans,
            which visit no graph).
        visited_nodes: visited-set insertions during traversal (0 for
            flat scans).
        quantized_distances: approximate (SQ8/PQ-ADC) distance
            evaluations on the quantized traversal path; 0 when the
            index searches in float32.
        rerank_distances: candidates re-scored by the exact float32
            rerank tail (already included in ``distance_computations``).
        rerank_factor: the rerank budget multiplier in effect (0.0 when
            unquantized).
    """

    ids: np.ndarray
    distances: np.ndarray
    distance_computations: int
    hops: int = 0
    visited_nodes: int = 0
    quantized_distances: int = 0
    rerank_distances: int = 0
    rerank_factor: float = 0.0

    def __len__(self) -> int:
        return int(self.ids.shape[0])


class HnswIndex:
    """Hierarchical Navigable Small World index over float32 vectors.

    Args:
        dim: vector dimensionality.
        m: degree bound M; each node keeps at most M neighbors per level
            (2M on level 0, the empirical improvement noted in §2.1).
        ef_construction: candidate-list size during insertion (efc).
        metric: ``l2`` (default), ``ip``, or ``cosine``.
        seed: seed for the stochastic level assignment.
        quantization: None (default, float32 search), a codec kind
            (``"sq8"``/``"pq"``), or a
            :class:`~repro.vectors.quantized_store.QuantizationConfig`.
            When set, bottom-level search ranks candidates by quantized
            distances and re-scores a ``rerank_factor * k`` tail
            exactly (see ``docs/quantization.md``).
    """

    def __init__(
        self,
        dim: int,
        m: int = 16,
        ef_construction: int = 40,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
        quantization=None,
    ) -> None:
        if m < 2:
            raise ValueError(f"M must be at least 2, got {m}")
        if ef_construction < 1:
            raise ValueError(f"efc must be positive, got {ef_construction}")
        self.m = int(m)
        self.m_max0 = 2 * self.m
        self.ef_construction = int(ef_construction)
        self.store = VectorStore(dim, metric=metric)
        self.graph = LayeredGraph()
        self._levels = LevelGenerator(self.m, seed=seed)
        self._frozen = None
        self.quantization = resolve_quantization(quantization)
        self._quant: QuantizedStore | None = None

    def __len__(self) -> int:
        return len(self.store)

    @property
    def metric(self) -> Metric:
        """The configured distance metric."""
        return self.store.metric

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, vector: np.ndarray) -> int:
        """Insert one vector; returns its node id."""
        node = self.store.add(vector)
        self._frozen = None
        level = self._levels.draw()
        if len(self.graph) == 0:
            self.graph.add_node(node, level)
            self.graph.entry_point = node
            return node

        computer = self.store.computer()
        computer.defer_counts()
        try:
            query = computer.set_query(vector)
            entry = self.graph.entry_point
            top = self.graph.node_level(entry)
            best = (computer.distance_one(query, entry), entry)

            # Phase 1: greedy descent with ef=1 from the top level to
            # level+1.
            for lev in range(top, level, -1):
                best = self._greedy_step(computer, query, best, lev)

            # Phase 2: efc-search and neighbor selection from
            # min(level, top) down to level 0.
            self.graph.add_node(node, level)
            scratch = thread_scratch(len(self.store))
            entry_points = [best]
            for lev in range(min(level, top), -1, -1):
                scratch.begin(len(self.store))
                for _, seed_node in entry_points:
                    scratch.mark(seed_node)
                found = search_layer(
                    computer,
                    query,
                    entry_points,
                    ef=self.ef_construction,
                    neighbor_fn=lambda c, lev=lev: self.graph.neighbors(c, lev),
                    scratch=scratch,
                )
                selected = select_neighbors_heuristic(
                    computer.base, found, self.m, metric=self.metric
                )
                self.graph.set_neighbors(node, lev, [nid for _, nid in selected])
                cap = self.m if lev > 0 else self.m_max0
                for dist, neighbor in selected:
                    self._add_reverse_edge(computer, neighbor, node, lev, cap)
                entry_points = found

            if level > top:
                self.graph.entry_point = node
        finally:
            computer.flush_counts()
        return node

    def add_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Insert many vectors; returns their node ids as an intp array.

        Accepts an ``(n, d)`` matrix, a single 1-D vector (ids of shape
        ``(1,)``), or empty input (empty intp array — not the float
        array a bare ``np.asarray([])`` round-trip would produce).
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.size == 0:
            return np.empty(0, dtype=np.intp)
        vectors = np.atleast_2d(vectors)
        return np.asarray([self.add(v) for v in vectors], dtype=np.intp)

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        m: int = 16,
        ef_construction: int = 40,
        metric: "Metric | str" = Metric.L2,
        seed: int | np.random.Generator | None = None,
        n_workers: int = 1,
        wave_cap: int | None = None,
        quantization=None,
    ) -> "HnswIndex":
        """Construct an index over ``vectors`` (n, d) in insertion order.

        Args:
            n_workers: parallelism of the build.  1 (default) keeps the
                sequential insert loop — the byte-identical reference
                path.  Greater values route through the wave-parallel,
                GEMM-batched pipeline of :mod:`repro.core.bulkbuild`,
                which is run-to-run deterministic for a fixed seed but
                builds a slightly different (recall-equivalent) graph.
            wave_cap: maximum wave size for the parallel pipeline
                (default: scaled from ``n``); ignored when
                ``n_workers == 1``.
            quantization: forwarded to the constructor; a parallel
                build additionally runs its Phase-A distance batches on
                the quantized codes (see :mod:`repro.core.bulkbuild`).
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        index = cls(vectors.shape[1], m=m, ef_construction=ef_construction,
                    metric=metric, seed=seed, quantization=quantization)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if n_workers > 1:
            from repro.core.bulkbuild import bulk_insert_hnsw

            bulk_insert_hnsw(index, vectors, n_workers=n_workers,
                             wave_cap=wave_cap)
        else:
            index.add_batch(vectors)
        return index

    def _greedy_step(
        self,
        computer: DistanceComputer,
        query: np.ndarray,
        best: tuple[float, int],
        level: int,
        neighbor_fn=None,
    ) -> tuple[float, int]:
        scratch = thread_scratch(len(self.store))
        scratch.begin(len(self.store))
        scratch.mark(best[1])
        found = search_layer(
            computer, query, [best], ef=1,
            neighbor_fn=(neighbor_fn if neighbor_fn is not None
                         else lambda c: self.graph.neighbors(c, level)),
            scratch=scratch,
        )
        return found[0]

    def _add_reverse_edge(
        self,
        computer: DistanceComputer,
        owner: int,
        new_neighbor: int,
        level: int,
        cap: int,
    ) -> None:
        """Add ``owner -> new_neighbor``; shrink with the heuristic on overflow."""
        neighbor_ids = self.graph.neighbors(owner, level)
        if new_neighbor in neighbor_ids:
            return
        neighbor_ids.append(new_neighbor)
        if len(neighbor_ids) <= cap:
            return
        ids = np.asarray(neighbor_ids, dtype=np.intp)
        dists = computer.distances_to(computer.base[owner], ids)
        candidates = list(zip(dists.tolist(), neighbor_ids))
        selected = select_neighbors_heuristic(
            computer.base, candidates, cap, metric=self.metric
        )
        self.graph.set_neighbors(owner, level, [nid for _, nid in selected])

    # ------------------------------------------------------------------
    # Search (Algorithm 1)
    # ------------------------------------------------------------------

    def _adjacency(self):
        """The cached CSR snapshot (see :func:`repro.core.search.freeze_graph`)."""
        if self._frozen is None:
            from repro.core.search import freeze_graph

            self._frozen = freeze_graph(self.graph)
        return self._frozen

    def freeze(self):
        """Materialize (and cache) the read-only CSR adjacency snapshot.

        The batch engine calls this before fanning a batch across
        threads so every worker shares one immutable snapshot.
        Invalidated by :meth:`add`.
        """
        from repro.core.search import assert_frozen

        frozen = self._adjacency()
        assert_frozen(frozen)
        return frozen

    # ------------------------------------------------------------------
    # Quantization
    # ------------------------------------------------------------------

    def enable_quantization(self, config="sq8") -> None:
        """Activate (or with None, deactivate) the quantized hot path.

        Trains the codec on the currently stored vectors; later inserts
        are encoded with the frozen codec at the next search.
        """
        self.quantization = resolve_quantization(config)
        self._quant = None
        if self.quantization is not None and len(self.store):
            self._quant_store()

    def _quant_store(self) -> QuantizedStore | None:
        """The code mirror, trained lazily and synced to the store."""
        if self.quantization is None or len(self.store) == 0:
            return None
        if self._quant is None:
            qs = QuantizedStore(self.quantization, self.metric)
            qs.train(self.store.vectors)
            self._quant = qs
        self._quant.sync(self.store)
        return self._quant

    def _search_quantized(
        self,
        computer: DistanceComputer,
        qstore: QuantizedStore,
        query: np.ndarray,
        ef: int,
        stats: TraversalStats | None = None,
    ):
        """Float32 descent + quantized beam search on level 0.

        Returns ``(candidate_ids, qcomp)``: candidates in ascending
        quantized-distance order plus the quantized computer (for its
        evaluation count).  The exact rerank tail is the caller's.
        """
        from repro.core.quantsearch import quantized_search_layer

        frozen = self._adjacency()
        entry = self.graph.entry_point
        best = (computer.distance_one(query, entry), entry)
        for lev in range(self.graph.node_level(entry), 0, -1):
            best = self._greedy_step(
                computer, query, best, lev,
                neighbor_fn=frozen[lev].__getitem__,
            )
        qcomp = qstore.computer()
        qcomp.set_query(query)
        level0 = frozen[0]
        seed_ids = np.asarray([best[1]], dtype=np.intp)
        seed_dists = qcomp.distances(seed_ids)
        if stats is not None:
            stats.visited += 1
        found_ids, _ = quantized_search_layer(
            qcomp, seed_ids, seed_dists, ef,
            indptr=level0.indptr, indices=level0.indices,
            num_ids=level0.num_ids, stats=stats,
        )
        return found_ids, qcomp

    def search(self, query: np.ndarray, k: int, ef_search: int = 64) -> SearchResult:
        """K-nearest-neighbor search (paper Algorithm 1).

        Args:
            query: query vector of dimension ``dim``.
            k: number of neighbors to return.
            ef_search: dynamic candidate-list size on level 0 (efs);
                effective value is ``max(ef_search, k)``.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if len(self.graph) == 0:
            empty = np.empty(0, dtype=np.intp)
            return SearchResult(empty, np.empty(0, dtype=np.float32), 0)
        computer = self.store.computer()
        qstore = self._quant_store()
        computer.defer_counts()
        try:
            query = computer.set_query(query)
            if qstore is not None:
                from repro.core.quantsearch import exact_rerank

                tstats = TraversalStats()
                cand_ids, qcomp = self._search_quantized(
                    computer, qstore, query, max(ef_search, k), stats=tstats,
                )
                rf = self.quantization.rerank_factor
                ids, dists, n_rerank = exact_rerank(
                    computer, query, cand_ids, k, rerank_budget(k, rf)
                )
                return SearchResult(
                    ids, dists, computer.count,
                    hops=tstats.hops, visited_nodes=tstats.visited,
                    quantized_distances=qcomp.count,
                    rerank_distances=n_rerank, rerank_factor=rf,
                )
            found = self._search_candidates(computer, query, max(ef_search, k))
        finally:
            computer.flush_counts()
        top = found[:k]
        return SearchResult(
            np.asarray([nid for _, nid in top], dtype=np.intp),
            np.asarray([dist for dist, _ in top], dtype=np.float32),
            computer.count,
        )

    def search_candidates(
        self, query: np.ndarray, ef_search: int
    ) -> tuple[list[tuple[float, int]], int]:
        """Raw ef-search: (dist, id) candidates plus distance-comp count.

        Exposed for the post-filtering baseline, which over-searches for
        ``K/s`` candidates and filters afterwards (paper §7.2).  On the
        quantized path every candidate is re-scored exactly (a full
        rerank) so downstream filtering still sees float32 distances.
        """
        if len(self.graph) == 0:
            return [], 0
        computer = self.store.computer()
        qstore = self._quant_store()
        computer.defer_counts()
        try:
            query = computer.set_query(query)
            if qstore is not None:
                from repro.core.quantsearch import exact_rerank

                cand_ids, _ = self._search_quantized(
                    computer, qstore, query, ef_search,
                )
                ids, dists, _ = exact_rerank(
                    computer, query, cand_ids,
                    k=cand_ids.size, budget=cand_ids.size,
                )
                found = list(zip(dists.tolist(), ids.tolist()))
            else:
                found = self._search_candidates(computer, query, ef_search)
        finally:
            computer.flush_counts()
        return found, computer.count

    def _search_candidates(
        self, computer: DistanceComputer, query: np.ndarray, ef: int
    ) -> list[tuple[float, int]]:
        frozen = self._adjacency()
        entry = self.graph.entry_point
        best = (computer.distance_one(query, entry), entry)
        for lev in range(self.graph.node_level(entry), 0, -1):
            level_csr = frozen[lev]
            best = self._greedy_step(
                computer, query, best, lev,
                neighbor_fn=level_csr.__getitem__,
            )
        level0 = frozen[0]
        scratch = thread_scratch(len(self.store))
        scratch.begin(len(self.store))
        scratch.mark(best[1])
        return search_layer(
            computer, query, [best], ef=ef,
            neighbor_fn=level0.__getitem__,
            scratch=scratch,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def nbytes(self) -> int:
        """Vector payload + adjacency footprint (Table 5 methodology)."""
        return self.store.nbytes() + self.graph.nbytes()

    def out_degree_by_level(self) -> dict[int, float]:
        """Average out-degree per level (Table 6 methodology)."""
        return {
            lev: self.graph.average_out_degree(lev)
            for lev in range(self.graph.max_level + 1)
        }
