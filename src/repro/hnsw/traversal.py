"""Greedy best-first traversal shared by HNSW and ACORN.

``search_layer`` is the generic engine behind both Algorithm 1 (HNSW
search) and Algorithm 2 (ACORN-SEARCH-LAYER): the only difference
between the two papers' listings is how the neighborhood of a visited
node is produced, so the neighborhood policy is injected as a callable.
HNSW passes the raw adjacency (a CSR slice at search time, a live list
during construction); ACORN passes predicate-filtering,
compression-expanding, or two-hop-expanding lookups (Figure 4).

The hot loop is vectorized: the neighborhood arrives as a numpy array
(the CSR strategies of :mod:`repro.core.search` return int32 slices),
the visited check is one gather against the epoch-stamped scratch
array, and marking is one scatter.  Python survives only in the heap
maintenance, whose per-candidate branching is inherently sequential.
Visited state lives in a :class:`~repro.hnsw.scratch.TraversalScratch`
shared across all levels and queries of a thread instead of a fresh
O(N) allocation per level.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections.abc import Callable, Sequence

import numpy as np

from repro.hnsw.scratch import TraversalScratch
from repro.vectors.distance import DistanceComputer

NeighborFn = Callable[[int], Sequence[int]]


@dataclasses.dataclass
class TraversalStats:
    """Mutable per-query traversal counters filled in by ``search_layer``.

    One instance is threaded through every layer traversal of a single
    query, so the totals cover the whole descent plus the bottom-level
    search.

    Attributes:
        hops: nodes popped from the candidate heap and expanded (graph
            hops, summed over all levels).
        visited: visited-set insertions (seeds plus newly discovered
            neighbors; a node reached again on another level counts once
            per level, matching the per-level visited scopes).
    """

    hops: int = 0
    visited: int = 0


def search_layer(
    computer: DistanceComputer,
    query: np.ndarray,
    entry_points: Sequence[tuple[float, int]],
    ef: int,
    neighbor_fn: NeighborFn,
    scratch: TraversalScratch,
    stats: TraversalStats | None = None,
    monitor=None,
) -> list[tuple[float, int]]:
    """Best-first search on one level; returns ``ef`` nearest as (dist, id).

    Args:
        computer: distance computer bound to the base vectors (counts
            every distance evaluated).
        query: the query vector.
        entry_points: (distance, id) seeds; their ids must already be
            marked in the scratch's current epoch.
        ef: size of the dynamic candidate list (paper's ``ef``).
        neighbor_fn: maps a visited node id to its candidate
            neighborhood for this level/query — already filtered and
            truncated per the index's lookup strategy.  A numpy int
            array avoids a conversion; plain sequences also work.
        scratch: per-thread traversal scratch whose current epoch scopes
            the visited set; the caller opens the scope with
            :meth:`~repro.hnsw.scratch.TraversalScratch.begin` and marks
            the seeds.
        stats: optional per-query counters, incremented in place.
        monitor: optional walk-budget hook (duck-typed to
            :class:`repro.routing.monitor.WalkMonitor`): its
            ``observe(n_passing)`` is called once per expanded node
            with the filtered-neighborhood size, and the walk stops
            early — returning the best results found so far — as soon
            as it returns False.  None (the default) keeps the
            unmonitored hot loop byte-identical.

    Returns:
        Up to ``ef`` (distance, id) pairs sorted by ascending distance.
    """
    if ef <= 0:
        raise ValueError(f"ef must be positive, got {ef}")
    visited = scratch.visited
    epoch = scratch.epoch
    candidates = scratch.candidates
    candidates.clear()
    candidates.extend(entry_points)
    heapq.heapify(candidates)
    results = scratch.results
    results.clear()
    results.extend((-dist, node) for dist, node in entry_points)
    heapq.heapify(results)

    while candidates:
        dist_c, current = heapq.heappop(candidates)
        if dist_c > -results[0][0] and len(results) >= ef:
            break
        if stats is not None:
            stats.hops += 1
        neighbor_ids = neighbor_fn(current)
        if not isinstance(neighbor_ids, np.ndarray):
            neighbor_ids = np.asarray(neighbor_ids, dtype=np.intp)
        if monitor is not None and not monitor.observe(int(neighbor_ids.size)):
            break
        if neighbor_ids.size == 0:
            continue
        unvisited = neighbor_ids[visited[neighbor_ids] != epoch]
        if unvisited.size == 0:
            continue
        visited[unvisited] = epoch
        if stats is not None:
            stats.visited += int(unvisited.size)
        dists = computer.distances_to(query, unvisited)
        worst = -results[0][0]
        for node, dist in zip(unvisited.tolist(), dists.tolist()):
            if len(results) < ef or dist < worst:
                heapq.heappush(candidates, (dist, node))
                heapq.heappush(results, (-dist, node))
                if len(results) > ef:
                    heapq.heappop(results)
                worst = -results[0][0]

    ordered = sorted((-neg_dist, node) for neg_dist, node in results)
    return ordered[:ef]


def greedy_descent(
    computer: DistanceComputer,
    query: np.ndarray,
    entry: tuple[float, int],
    levels: Sequence[int],
    neighbor_fn_for_level: Callable[[int], NeighborFn],
    num_nodes: int,
    scratch: TraversalScratch | None = None,
    stats: TraversalStats | None = None,
) -> tuple[float, int]:
    """Descend through ``levels`` with ef=1, returning the final entry.

    This is the upper-level phase of Algorithm 1/2: at each level one
    greedy search selects a single node that seeds the next level.  One
    scratch buffer serves the whole descent — each level opens a fresh
    epoch instead of allocating its own O(N) visited array.
    """
    if scratch is None:
        scratch = TraversalScratch(num_nodes)
    best = entry
    for level in levels:
        scratch.begin(num_nodes)
        scratch.mark(best[1])
        found = search_layer(
            computer, query, [best], ef=1,
            neighbor_fn=neighbor_fn_for_level(level), scratch=scratch,
            stats=stats,
        )
        best = found[0]
    return best
