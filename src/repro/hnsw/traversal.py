"""Greedy best-first traversal shared by HNSW and ACORN.

``search_layer`` is the generic engine behind both Algorithm 1 (HNSW
search) and Algorithm 2 (ACORN-SEARCH-LAYER): the only difference
between the two papers' listings is how the neighborhood of a visited
node is produced, so the neighborhood policy is injected as a callable.
HNSW passes the raw adjacency list; ACORN passes predicate-filtering,
compression-expanding, or two-hop-expanding lookups (Figure 4).
"""

from __future__ import annotations

import dataclasses
import heapq
from collections.abc import Callable, Sequence

import numpy as np

from repro.vectors.distance import DistanceComputer

NeighborFn = Callable[[int], Sequence[int]]


@dataclasses.dataclass
class TraversalStats:
    """Mutable per-query traversal counters filled in by ``search_layer``.

    One instance is threaded through every layer traversal of a single
    query, so the totals cover the whole descent plus the bottom-level
    search.

    Attributes:
        hops: nodes popped from the candidate heap and expanded (graph
            hops, summed over all levels).
        visited: visited-set insertions (seeds plus newly discovered
            neighbors; a node reached again on another level counts once
            per level, matching the per-level visited arrays).
    """

    hops: int = 0
    visited: int = 0


def search_layer(
    computer: DistanceComputer,
    query: np.ndarray,
    entry_points: Sequence[tuple[float, int]],
    ef: int,
    neighbor_fn: NeighborFn,
    visited: np.ndarray,
    stats: TraversalStats | None = None,
) -> list[tuple[float, int]]:
    """Best-first search on one level; returns ``ef`` nearest as (dist, id).

    Args:
        computer: distance computer bound to the base vectors (counts
            every distance evaluated).
        query: the query vector.
        entry_points: (distance, id) seeds; their ids must already be
            marked in ``visited``.
        ef: size of the dynamic candidate list (paper's ``ef``).
        neighbor_fn: maps a visited node id to its candidate
            neighborhood for this level/query — already filtered and
            truncated per the index's lookup strategy.
        visited: boolean scratch array over all node ids, mutated in
            place; lets multi-seed callers share a visited set.
        stats: optional per-query counters, incremented in place.

    Returns:
        Up to ``ef`` (distance, id) pairs sorted by ascending distance.
    """
    if ef <= 0:
        raise ValueError(f"ef must be positive, got {ef}")
    candidates: list[tuple[float, int]] = list(entry_points)
    heapq.heapify(candidates)
    results = [(-dist, node) for dist, node in entry_points]
    heapq.heapify(results)

    while candidates:
        dist_c, current = heapq.heappop(candidates)
        if dist_c > -results[0][0] and len(results) >= ef:
            break
        if stats is not None:
            stats.hops += 1
        unvisited = [v for v in neighbor_fn(current) if not visited[v]]
        if not unvisited:
            continue
        if stats is not None:
            stats.visited += len(unvisited)
        for node in unvisited:
            visited[node] = True
        dists = computer.distances_to(query, np.asarray(unvisited, dtype=np.intp))
        worst = -results[0][0]
        for node, dist in zip(unvisited, dists.tolist()):
            if len(results) < ef or dist < worst:
                heapq.heappush(candidates, (dist, node))
                heapq.heappush(results, (-dist, node))
                if len(results) > ef:
                    heapq.heappop(results)
                worst = -results[0][0]

    ordered = sorted((-neg_dist, node) for neg_dist, node in results)
    return ordered[:ef]


def greedy_descent(
    computer: DistanceComputer,
    query: np.ndarray,
    entry: tuple[float, int],
    levels: Sequence[int],
    neighbor_fn_for_level: Callable[[int], NeighborFn],
    num_nodes: int,
) -> tuple[float, int]:
    """Descend through ``levels`` with ef=1, returning the final entry.

    This is the upper-level phase of Algorithm 1/2: at each level one
    greedy search selects a single node that seeds the next level.
    """
    best = entry
    for level in levels:
        visited = np.zeros(num_nodes, dtype=bool)
        visited[best[1]] = True
        found = search_layer(
            computer, query, [best], ef=1, neighbor_fn=neighbor_fn_for_level(level),
            visited=visited,
        )
        best = found[0]
    return best
